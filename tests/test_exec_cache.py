"""Tests for the disk-persistent memoization cache layer."""

import pickle

import pytest

from repro.exec import MemoCache, SweepRunner, default_cache
from repro.exec.cache import _default_caches, _version_namespace


def _entry(tmp_path, key):
    return tmp_path / _version_namespace() / key[:2] / f"{key}.pkl"


def square(x):
    return x * x


@pytest.fixture(autouse=True)
def clean_default_caches():
    saved = dict(_default_caches)
    _default_caches.clear()
    yield
    _default_caches.clear()
    _default_caches.update(saved)


# ---------------------------------------------------------------------------
# Disk layer
# ---------------------------------------------------------------------------
def test_entries_survive_across_cache_instances(tmp_path):
    first = MemoCache(path=tmp_path)
    first.put("a" * 64, {"cycles": 123})
    assert first.disk_entries() == 1

    second = MemoCache(path=tmp_path)      # fresh instance, same directory
    assert ("a" * 64) in second
    assert second.get("a" * 64) == {"cycles": 123}
    assert second.hits == 1 and second.misses == 0


def test_memory_only_cache_unchanged(tmp_path):
    cache = MemoCache()
    cache.put("k", 1)
    assert cache.get("k") == 1
    assert cache.disk_entries() == 0
    assert "disk_entries" not in cache.stats()
    assert "disk_entries" in MemoCache(path=tmp_path).stats()


def test_corrupt_disk_entry_is_a_miss(tmp_path):
    cache = MemoCache(path=tmp_path)
    key = "b" * 64
    cache.put(key, 42)
    _entry(tmp_path, key).write_bytes(b"not a pickle")

    fresh = MemoCache(path=tmp_path)
    assert key not in fresh
    assert fresh.get(key) is None
    assert fresh.misses == 1


def test_unpicklable_value_stays_memory_only(tmp_path):
    cache = MemoCache(path=tmp_path)
    cache.put("c" * 64, lambda: None)      # cannot pickle a lambda
    assert cache.disk_entries() == 0
    assert cache.get("c" * 64) is not None # memory layer still serves it


def test_clear_removes_disk_entries_too(tmp_path):
    cache = MemoCache(path=tmp_path)
    for i in range(3):
        cache.put(f"{i}{'d' * 63}", i)
    assert cache.disk_entries() == 3
    cache.clear()
    assert len(cache) == 0
    assert cache.disk_entries() == 0
    assert MemoCache(path=tmp_path).get("0" + "d" * 63) is None


def test_clear_never_touches_foreign_files(tmp_path):
    # Pointing the cache at a shared directory must not make clear() delete
    # pickles the cache did not write.
    foreign = tmp_path / "my-results.pkl"
    foreign.write_bytes(pickle.dumps([1, 2, 3]))
    nested = tmp_path / "archive"
    nested.mkdir()
    (nested / "more.pkl").write_bytes(pickle.dumps("keep me"))

    cache = MemoCache(path=tmp_path)
    cache.put("a" * 64, "cache-entry")
    cache.clear()
    assert cache.disk_entries() == 0
    assert foreign.exists() and (nested / "more.pkl").exists()


def test_disk_write_is_atomic_no_partial_files(tmp_path):
    cache = MemoCache(path=tmp_path)
    cache.put("e" * 64, list(range(1000)))
    names = [f.name for f in tmp_path.rglob("*") if f.is_file()]
    assert names == [f"{'e' * 64}.pkl"]    # no leftover temp files
    with open(_entry(tmp_path, "e" * 64), "rb") as fh:
        assert pickle.load(fh) == list(range(1000))


def test_disk_entries_are_namespaced_by_code_version(tmp_path, monkeypatch):
    # A cache directory written by one code version must never serve a
    # different version's simulator (stale-results hazard).
    cache = MemoCache(path=tmp_path)
    cache.put("f" * 64, "old-code-result")
    assert _version_namespace() in str(_entry(tmp_path, "f" * 64))

    from repro.exec import cache as cache_mod
    monkeypatch.setattr(cache_mod, "_version_namespace", lambda: "v999.0.0")
    upgraded = MemoCache(path=tmp_path)
    assert ("f" * 64) not in upgraded
    assert upgraded.get("f" * 64) is None
    assert upgraded.disk_entries() == 0


# ---------------------------------------------------------------------------
# Runner integration: hits survive "process" boundaries
# ---------------------------------------------------------------------------
def test_runner_hits_survive_into_fresh_cache_instance(tmp_path):
    first = SweepRunner(jobs=1, cache=MemoCache(path=tmp_path))
    assert first.map(square, [3, 4]) == [9, 16]
    assert first.stats.points_executed == 2

    # A new runner with a brand-new cache object (as a new process would
    # build) sees the persisted results and executes nothing.
    second = SweepRunner(jobs=1, cache=MemoCache(path=tmp_path))
    assert second.map(square, [3, 4]) == [9, 16]
    assert second.stats.points_executed == 0
    assert second.stats.cache_hits == 2


# ---------------------------------------------------------------------------
# default_cache resolution
# ---------------------------------------------------------------------------
def test_default_cache_is_process_global_per_path(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert default_cache() is default_cache()
    assert default_cache().path is None
    a = default_cache(tmp_path / "a")
    assert a is default_cache(tmp_path / "a")
    assert a is not default_cache(tmp_path / "b")
    assert a is not default_cache()


def test_default_cache_honours_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    cache = default_cache()
    assert cache.path == tmp_path / "env"
    cache.put("f" * 64, "persisted")
    assert (tmp_path / "env").is_dir()


# ---------------------------------------------------------------------------
# Size cap / LRU-by-mtime eviction
# ---------------------------------------------------------------------------
def _key(i):
    return f"{i:02d}" + "e" * 62


def test_max_bytes_validation():
    with pytest.raises(ValueError):
        MemoCache(max_bytes=0)


def test_eviction_prunes_oldest_entries_past_the_cap(tmp_path):
    cache = MemoCache(path=tmp_path, max_bytes=1)   # everything over budget
    cache.put(_key(0), b"x" * 256)
    cache.put(_key(1), b"y" * 256)
    # Each store triggers a prune; only the newest entry can remain.
    assert cache.disk_entries() <= 1
    assert cache.disk_evictions >= 1
    # In-memory layer is never pruned: both values still served.
    assert cache.get(_key(0)) == b"x" * 256
    assert cache.get(_key(1)) == b"y" * 256


def test_reads_refresh_lru_order(tmp_path):
    import os as _os
    cache = MemoCache(path=tmp_path)
    for i in range(3):
        cache.put(_key(i), b"v" * 128)
    # Age all entries, then touch entry 0 by reading it from disk.
    for i in range(3):
        entry = _entry(tmp_path, _key(i))
        _os.utime(entry, (1, 1 + i))
    fresh = MemoCache(path=tmp_path)                 # cold memory layer
    assert fresh.get(_key(0)) == b"v" * 128          # refreshes mtime
    sizes = sum(e.stat().st_size
                for e in tmp_path.glob("v*/*/*.pkl"))
    fresh.max_bytes = sizes - 1                      # force one eviction
    fresh.put(_key(3), b"v" * 128)
    survivors = {e.stem for e in tmp_path.glob("v*/*/*.pkl")}
    assert _key(0) in survivors                      # recently read: kept
    assert _key(1) not in survivors                  # oldest mtime: evicted


def test_eviction_composes_with_corrupt_entries(tmp_path):
    cache = MemoCache(path=tmp_path, max_bytes=600)
    cache.put(_key(0), b"a" * 128)
    cache.put(_key(1), b"b" * 128)
    # Corrupt one entry on disk: reads degrade to misses...
    entry = _entry(tmp_path, _key(0))
    entry.write_bytes(b"not a pickle")
    fresh = MemoCache(path=tmp_path, max_bytes=600)
    assert fresh.get(_key(0), "miss") == "miss"
    # ...and the corrupt file still participates in (and yields to) pruning.
    for i in range(2, 8):
        fresh.put(_key(i), b"c" * 128)
    assert sum(e.stat().st_size for e in tmp_path.glob("v*/*/*.pkl")) <= 600
    assert fresh.get(_key(7)) == b"c" * 128
    assert fresh.disk_evictions > 0


def test_default_cache_reads_cap_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_CACHE_MAX_MB", "0.25")
    cache = default_cache()
    assert cache.max_bytes == 256 * 1024
    # An explicit cap reconfigures the existing instance.
    assert default_cache(max_bytes=1024) is cache
    assert cache.max_bytes == 1024


def test_cap_is_enforced_on_hit_only_caches(tmp_path):
    grower = MemoCache(path=tmp_path)
    for i in range(6):
        grower.put(_key(i), b"z" * 512)
    oversized = sum(e.stat().st_size for e in tmp_path.glob("v*/*/*.pkl"))
    # Opening the directory with a cap prunes immediately — a fully
    # memoized run (no stores) must still shrink an oversized layout.
    capped = MemoCache(path=tmp_path, max_bytes=oversized // 2)
    assert capped.disk_evictions > 0
    assert sum(e.stat().st_size
               for e in tmp_path.glob("v*/*/*.pkl")) <= oversized // 2
    # Reconfiguring the cap through default_cache() also prunes right away.
    cache = default_cache(tmp_path)
    for i in range(6, 12):
        cache.put(_key(i), b"z" * 512)
    total = sum(e.stat().st_size for e in tmp_path.glob("v*/*/*.pkl"))
    default_cache(tmp_path, max_bytes=total // 2)
    assert sum(e.stat().st_size
               for e in tmp_path.glob("v*/*/*.pkl")) <= total // 2
    with pytest.raises(ValueError):
        default_cache(tmp_path, max_bytes=0)


# ---------------------------------------------------------------------------
# Concurrent writers (the fleet-wide memo store scenario)
# ---------------------------------------------------------------------------
def _stress_key(worker, i):
    return f"{worker}{i:03d}" + "f" * 60


def _cache_stress_worker(args):
    """One fleet worker hammering a tiny, capped shared cache directory.

    Constant eviction pressure makes every process race every other in
    ``_prune``: files vanish between scan and stat, and between stat and
    unlink.  Returns an error string, or "ok".
    """
    path, worker, rounds = args
    from repro.exec.cache import MemoCache

    cache = MemoCache(path=path, max_bytes=2048)
    for i in range(rounds):
        key = _stress_key(worker, i)
        cache.put(key, key)                     # value embeds its own key
        for probe_worker in range(4):
            probe = _stress_key(probe_worker, i)
            value = cache.get(probe, None)
            if value is not None and value != probe:
                return f"corrupt read: {probe} -> {value!r}"
    return "ok"


def test_concurrent_writers_race_safely(tmp_path):
    import concurrent.futures

    jobs = [(str(tmp_path), worker, 40) for worker in range(4)]
    try:
        with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
            outcomes = list(pool.map(_cache_stress_worker, jobs))
    except OSError:
        pytest.skip("sandbox does not allow worker processes")
    assert outcomes == ["ok"] * 4
    # Whatever survived the crossfire is intact and correctly keyed.
    survivor = MemoCache(path=tmp_path)
    for entry in tmp_path.glob("v*/*/*.pkl"):
        key = entry.stem
        assert survivor.get(key) == key


def test_prune_tolerates_losing_every_unlink_race(tmp_path, monkeypatch):
    from pathlib import Path

    grower = MemoCache(path=tmp_path)
    for i in range(6):
        grower.put(_key(i), b"z" * 512)
    oversized = sum(e.stat().st_size for e in tmp_path.glob("v*/*/*.pkl"))

    real_unlink = Path.unlink

    def racing_unlink(self, *args, **kwargs):
        # Another worker evicted the same entry first: the file is gone by
        # the time our unlink lands.
        real_unlink(self, *args, **kwargs)
        raise FileNotFoundError(str(self))

    monkeypatch.setattr(Path, "unlink", racing_unlink)
    capped = MemoCache(path=tmp_path, max_bytes=oversized // 2)
    monkeypatch.undo()
    # The race loser must neither crash nor claim the evictions as its own,
    # and the freed bytes still count toward the cap.
    assert capped.disk_evictions == 0
    assert sum(e.stat().st_size
               for e in tmp_path.glob("v*/*/*.pkl")) <= oversized // 2


def test_prune_tolerates_directories_vanishing_mid_scan(tmp_path):
    cache = MemoCache(path=tmp_path)
    for i in range(4):
        cache.put(_key(i), b"z" * 128)
    # A concurrent clear() removed a whole shard between listing and
    # descending into it; the walk must skip it, not raise.
    entries = list(cache._disk_entry_files())
    assert len(entries) == 4
    import shutil
    shard = entries[0].parent
    walker = cache._disk_entry_files()
    next(walker)                                 # walk is underway
    shutil.rmtree(shard, ignore_errors=True)
    remaining = list(walker)                     # no FileNotFoundError
    assert all(entry.suffix == ".pkl" for entry in remaining)
