"""Unit tests for system specifications and the FPGA resource model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.resources import DeviceBudget, ResourceEstimate, ResourceModel
from repro.core.spec import SystemSpec, ThreadSpec, size_tlb_for_footprint
from repro.hwthread.hls import schedule_for


# ------------------------------------------------------------------ ThreadSpec
def test_thread_spec_derives_configs():
    spec = ThreadSpec(name="t0", kernel="vecadd", tlb_entries=32,
                      tlb_replacement="fifo", max_outstanding=8,
                      max_burst_bytes=128)
    assert spec.tlb_config(4096).entries == 32
    assert spec.tlb_config(8192).page_size == 8192
    assert spec.mmu_config(4096).tlb.replacement == "fifo"
    assert spec.thread_config().max_outstanding == 8
    assert spec.memif_config().max_burst_bytes == 128


def test_thread_spec_schedule_with_custom_unroll():
    base = ThreadSpec(name="t0", kernel="vecadd")
    custom = ThreadSpec(name="t1", kernel="vecadd", unroll=8)
    assert base.schedule().unroll == schedule_for("vecadd").unroll
    assert custom.schedule().unroll == 8


def test_thread_spec_with_tlb_entries_helper():
    spec = ThreadSpec(name="t0", kernel="matmul", tlb_entries=16)
    bigger = spec.with_tlb_entries(64)
    assert bigger.tlb_entries == 64
    assert bigger.kernel == "matmul"


def test_thread_spec_validation():
    with pytest.raises(ValueError):
        ThreadSpec(name="", kernel="vecadd")
    with pytest.raises(ValueError):
        ThreadSpec(name="t", kernel="vecadd", tlb_entries=0)
    with pytest.raises(ValueError):
        ThreadSpec(name="t", kernel="vecadd", max_outstanding=0)


# ------------------------------------------------------------------ SystemSpec
def test_system_spec_lookup_and_kernels():
    spec = SystemSpec(name="sys", threads=[
        ThreadSpec(name="a", kernel="vecadd"),
        ThreadSpec(name="b", kernel="matmul"),
        ThreadSpec(name="c", kernel="vecadd"),
    ])
    assert spec.num_threads == 3
    assert spec.thread("b").kernel == "matmul"
    assert spec.kernels_used() == ["matmul", "vecadd"]
    with pytest.raises(KeyError):
        spec.thread("missing")


def test_system_spec_requires_threads_and_unique_names():
    with pytest.raises(ValueError):
        SystemSpec(name="empty", threads=[])
    with pytest.raises(ValueError):
        SystemSpec(name="dup", threads=[ThreadSpec(name="x", kernel="vecadd"),
                                        ThreadSpec(name="x", kernel="matmul")])


# ------------------------------------------------------------------ TLB sizing
def test_size_tlb_covers_footprint_fraction():
    # 64 pages footprint, 50% coverage -> 32 entries.
    assert size_tlb_for_footprint(64 * 4096, 4096, coverage=0.5) == 32
    # Small footprints clamp to the minimum.
    assert size_tlb_for_footprint(4096, 4096) == 8
    # Huge footprints clamp to the maximum.
    assert size_tlb_for_footprint(1 << 30, 4096) == 128


def test_size_tlb_rounds_to_power_of_two():
    entries = size_tlb_for_footprint(100 * 4096, 4096, coverage=0.5)
    assert entries & (entries - 1) == 0


def test_size_tlb_validation():
    with pytest.raises(ValueError):
        size_tlb_for_footprint(0, 4096)
    with pytest.raises(ValueError):
        size_tlb_for_footprint(4096, 4096, coverage=0.0)


@settings(max_examples=40, deadline=None)
@given(footprint=st.integers(min_value=1, max_value=1 << 28),
       page_size=st.sampled_from([4096, 16384, 65536]))
def test_property_tlb_sizing_within_bounds(footprint, page_size):
    entries = size_tlb_for_footprint(footprint, page_size)
    assert 8 <= entries <= 128
    assert entries & (entries - 1) == 0


# ------------------------------------------------------------------ resources
def test_resource_estimate_addition_and_scaling():
    a = ResourceEstimate(luts=100, ffs=200, bram_kb=1.5, dsps=2)
    b = ResourceEstimate(luts=10, ffs=20, bram_kb=0.5, dsps=1)
    total = a + b
    assert total.luts == 110 and total.dsps == 3
    doubled = b.scaled(2)
    assert doubled.luts == 20 and doubled.bram_kb == 1.0
    assert set(total.as_dict()) == {"luts", "ffs", "bram_kb", "dsps"}


def test_tlb_resources_grow_with_entries():
    model = ResourceModel()
    small = model.tlb(8)
    large = model.tlb(64)
    assert large.luts > small.luts
    assert large.ffs > small.ffs


def test_set_associative_tlb_trades_luts_for_bram():
    model = ResourceModel()
    fa = model.tlb(64, associativity=None)
    sa = model.tlb(64, associativity=4)
    assert sa.luts < fa.luts
    assert sa.bram_kb > fa.bram_kb


def test_datapath_resources_reflect_operator_budget():
    model = ResourceModel()
    vecadd = model.datapath(schedule_for("vecadd"))
    matmul = model.datapath(schedule_for("matmul"))
    assert matmul.dsps > vecadd.dsps
    assert matmul.luts > vecadd.luts


def test_hardware_thread_resources_include_walker_when_private():
    model = ResourceModel()
    schedule = schedule_for("vecadd")
    private = model.hardware_thread(schedule, 16, None, 256, private_walker=True)
    shared = model.hardware_thread(schedule, 16, None, 256, private_walker=False)
    assert private.luts - shared.luts == model.walker().luts


def test_interconnect_scales_with_ports():
    model = ResourceModel()
    assert model.interconnect(8).luts == 2 * model.interconnect(4).luts
    with pytest.raises(ValueError):
        model.interconnect(0)


def test_device_budget_utilisation_and_fit():
    device = DeviceBudget(luts=1000, ffs=1000, bram_kb=10, dsps=10)
    fits = ResourceEstimate(luts=500, ffs=500, bram_kb=5, dsps=5)
    too_big = ResourceEstimate(luts=5000, ffs=0, bram_kb=0, dsps=0)
    assert device.fits(fits)
    assert not device.fits(too_big)
    assert device.utilisation(fits)["luts"] == pytest.approx(0.5)


def test_resource_model_input_validation():
    model = ResourceModel()
    with pytest.raises(ValueError):
        model.tlb(0)
    with pytest.raises(ValueError):
        ResourceEstimate(luts=10).scaled(-1)
