"""Tests for the benchmark suite and the regression gate (``repro bench``)."""

import copy
import json

import pytest

from repro.eval import bench


@pytest.fixture(scope="module")
def report():
    return bench.run_suite()


def test_suite_produces_positive_cycle_metrics(report):
    assert set(report.records) == set(bench.BENCH_SUITE)
    for record in report.records.values():
        assert record["wall_seconds"] >= 0
        assert record["metrics"]
        for value in record["metrics"].values():
            assert value > 0


def test_suite_metrics_are_deterministic(report):
    again = bench.run_suite()
    for name, record in report.records.items():
        assert again.records[name]["metrics"] == record["metrics"]


def test_committed_baseline_matches_current_cycles(report):
    # The committed baseline's cycle metrics must be exactly what the code
    # produces today — refreshing it is part of any change that moves them.
    baseline = bench.load_report("benchmarks/baseline.json")
    for name, record in report.records.items():
        assert record["metrics"] == baseline["records"][name]["metrics"]


def test_compare_passes_identical_runs(report):
    assert bench.compare(report.as_dict(), report.as_dict()) == []


def test_compare_flags_injected_cycle_regression(report):
    current = report.as_dict()
    baseline = copy.deepcopy(current)
    metrics = baseline["records"]["table3_tiny"]["metrics"]
    metrics["svm_cycles"] = int(metrics["svm_cycles"] / 1.3)   # >20% growth
    problems = bench.compare(current, baseline)
    assert len(problems) == 1
    assert "svm_cycles" in problems[0] and "regressed" in problems[0]


def test_compare_flags_wall_time_regression(report):
    current = copy.deepcopy(report.as_dict())
    baseline = copy.deepcopy(current)
    current["records"]["fig5_tlb_sweep"]["wall_seconds"] = (
        baseline["records"]["fig5_tlb_sweep"]["wall_seconds"] * 2 + 1)
    problems = bench.compare(current, baseline)
    assert any("wall_seconds" in p for p in problems)


def test_compare_tolerates_growth_within_threshold(report):
    current = copy.deepcopy(report.as_dict())
    baseline = copy.deepcopy(current)
    metrics = baseline["records"]["fig7_scaling"]["metrics"]
    metrics["total_cycles"] = int(metrics["total_cycles"] / 1.1)  # +10%
    assert bench.compare(current, baseline) == []
    assert bench.compare(current, baseline, threshold=0.05)       # stricter


def test_compare_fails_on_missing_benchmarks_and_metrics(report):
    current = copy.deepcopy(report.as_dict())
    baseline = copy.deepcopy(current)
    del current["records"]["fig11_models"]
    del current["records"]["table3_tiny"]["metrics"]["svm_cycles"]
    problems = bench.compare(current, baseline)
    assert any("fig11_models" in p and "missing" in p for p in problems)
    assert any("svm_cycles" in p and "missing" in p for p in problems)


def test_cli_bench_gate_round_trip(tmp_path, capsys, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "BENCH_test.json"
    base = tmp_path / "baseline.json"

    # First run writes both the report and a fresh baseline: gate passes.
    assert main(["bench", "--output", str(out),
                 "--write-baseline", str(base),
                 "--baseline", str(base)]) == 0
    report = json.loads(out.read_text())
    assert report["records"]

    # Inject a >20% regression into the baseline: gate fails with exit 1.
    doctored = json.loads(base.read_text())
    metrics = doctored["records"]["multiprocess_shared_tlb"]["metrics"]
    metrics["total_cycles"] = int(metrics["total_cycles"] / 1.5)
    base.write_text(json.dumps(doctored))
    assert main(["bench", "--output", str(out),
                 "--baseline", str(base)]) == 1

    # A looser threshold lets the same delta through.
    assert main(["bench", "--output", str(out), "--baseline", str(base),
                 "--threshold", "0.6"]) == 0


def test_write_baseline_pads_wall_budgets_but_keeps_cycles_exact(tmp_path,
                                                                 report):
    path = tmp_path / "baseline.json"
    bench.write_baseline(report, str(path))
    baseline = json.loads(path.read_text())
    assert baseline["sha"] == "baseline"
    for name, record in report.records.items():
        written = baseline["records"][name]
        assert written["metrics"] == record["metrics"]          # exact
        assert written["wall_seconds"] >= max(
            record["wall_seconds"] * bench.WALL_BUDGET_FACTOR,
            bench.WALL_BUDGET_MIN_SECONDS) - 0.01               # budget
    # A fresh run on the same machine passes the gate it just wrote.
    assert bench.compare(report.as_dict(), baseline) == []


# ---------------------------------------------------------------------------
# Baseline freshness (exact drift, both directions)
# ---------------------------------------------------------------------------
def test_check_freshness_passes_identical_runs(report):
    assert bench.check_freshness(report.as_dict(), report.as_dict()) == []


def test_committed_baseline_is_fresh(report):
    baseline = bench.load_report("benchmarks/baseline.json")
    assert bench.check_freshness(report.as_dict(), baseline) == []


def test_check_freshness_flags_any_drift_even_improvements(report):
    current = report.as_dict()
    baseline = copy.deepcopy(current)
    metrics = baseline["records"]["fig12_contention"]["metrics"]
    # An *improvement* (baseline higher than current) is still drift: a
    # stale baseline silently widens the regression gate's headroom.
    metrics["svm_cycles"] = metrics["svm_cycles"] + 1
    problems = bench.check_freshness(current, baseline)
    assert len(problems) == 1 and "drifted" in problems[0]
    # ... while the threshold-based regression gate happily passes it.
    assert bench.compare(current, baseline) == []


def test_check_freshness_ignores_wall_seconds(report):
    current = copy.deepcopy(report.as_dict())
    baseline = copy.deepcopy(current)
    baseline["records"]["table3_tiny"]["wall_seconds"] = 999.0
    assert bench.check_freshness(current, baseline) == []


def test_check_freshness_flags_missing_records_both_ways(report):
    current = copy.deepcopy(report.as_dict())
    baseline = copy.deepcopy(current)
    del baseline["records"]["fig12_contention"]
    del current["records"]["fig5_tlb_sweep"]
    problems = bench.check_freshness(current, baseline)
    assert any("fig12_contention" in p and "missing from baseline" in p
               for p in problems)
    assert any("fig5_tlb_sweep" in p and "not in current" in p
               for p in problems)


def test_cli_check_baseline_fresh_gate(tmp_path, monkeypatch):
    from repro.cli import main
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out = tmp_path / "BENCH_test.json"
    base = tmp_path / "baseline.json"

    assert main(["bench", "--output", str(out),
                 "--write-baseline", str(base),
                 "--check-baseline-fresh", str(base)]) == 0

    # Tiny drift (well under the 20% regression threshold) still fails.
    doctored = json.loads(base.read_text())
    metrics = doctored["records"]["fig12_contention"]["metrics"]
    metrics["tlb_misses"] = metrics["tlb_misses"] + 1
    base.write_text(json.dumps(doctored))
    assert main(["bench", "--output", str(out),
                 "--baseline", str(base),
                 "--check-baseline-fresh", str(base)]) == 1


# ---------------------------------------------------------------------------
# Suite subsetting, scale selection and the refresh drift summary
# ---------------------------------------------------------------------------
def test_suite_includes_the_adaptive_scheduling_entry(report):
    assert "fig13_adaptive" in bench.BENCH_SUITE
    metrics = report.records["fig13_adaptive"]["metrics"]
    assert metrics["adaptive_epochs"] > 0


def test_run_suite_only_restricts_entries():
    subset = bench.run_suite(only=["fig7_scaling"])
    assert set(subset.records) == {"fig7_scaling"}


def test_run_suite_rejects_unknown_entries():
    with pytest.raises(KeyError):
        bench.run_suite(only=["no-such-benchmark"])


def test_run_suite_scale_reaches_the_experiments(report):
    # default scale must move the numbers (it is a bigger workload).
    default = bench.run_suite(only=["fig7_scaling"], scale="default")
    tiny = report.records["fig7_scaling"]["metrics"]
    assert default.records["fig7_scaling"]["metrics"]["total_cycles"] > \
        tiny["total_cycles"]


def test_summarize_drift_reports_freshness(report):
    text = bench.summarize_drift(report.as_dict(), report.as_dict())
    assert "fresh" in text
    assert "|" not in text.splitlines()[-2]        # no table when fresh


def test_summarize_drift_tabulates_changed_metrics(report):
    current = report.as_dict()
    baseline = copy.deepcopy(current)
    metrics = baseline["records"]["table3_tiny"]["metrics"]
    metrics["svm_cycles"] += 100
    text = bench.summarize_drift(current, baseline)
    assert "| table3_tiny | svm_cycles |" in text
    assert "baseline-refresh" in text
    # Wall seconds are budgets, not code outputs: never tabulated.
    assert "wall_seconds" not in text


def test_summarize_drift_without_a_baseline(report):
    text = bench.summarize_drift(report.as_dict(), None)
    assert "No committed baseline" in text


def test_cli_bench_only_and_summary(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    monkeypatch.chdir(tmp_path)
    summary = tmp_path / "summary.md"
    code = main(["bench", "--output", str(tmp_path / "out.json"),
                 "--only", "fig7_scaling",
                 "--summary", str(summary)])
    assert code == 0
    assert "No committed baseline" in summary.read_text()
    data = json.loads((tmp_path / "out.json").read_text())
    assert set(data["records"]) == {"fig7_scaling"}


def test_cli_bench_rejects_unknown_only_entry(tmp_path, monkeypatch, capsys):
    from repro.cli import main
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--only", "bogus"]) == 2


def test_cli_bench_only_rejects_whole_suite_flags(tmp_path, monkeypatch,
                                                  capsys):
    from repro.cli import main
    monkeypatch.chdir(tmp_path)
    for flag in (["--baseline", "b.json"], ["--check-baseline-fresh"],
                 ["--write-baseline"]):
        assert main(["bench", "--only", "fig7_scaling"] + flag) == 2
        assert "whole-suite semantics" in capsys.readouterr().err


def test_cli_bench_non_tiny_scale_rejects_baseline_flags(tmp_path,
                                                         monkeypatch,
                                                         capsys):
    from repro.cli import main
    monkeypatch.chdir(tmp_path)
    for flag in (["--baseline", "b.json"], ["--check-baseline-fresh"],
                 ["--write-baseline"]):
        assert main(["bench", "--scale", "default", "--only", "fig7_scaling"]
                    + flag) == 2
        err = capsys.readouterr().err
        assert "whole-suite semantics" in err or "tiny-scale" in err
    assert main(["bench", "--scale", "default", "--output",
                 str(tmp_path / "o.json"), "--only", "fig7_scaling"]) == 0
