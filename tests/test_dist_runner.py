"""Tests for the broker-backed DistributedRunner behind the runner seam."""

import pytest

from repro.dist import (DistributedJobError, DistributedRunner, SQLiteBroker)
from repro.eval.harness import HarnessConfig
from repro.eval.sweep import Grid, SweepOutcomes
from repro.exec import ExperimentJob, MemoCache, SweepRunner, run_job
from repro.workloads import workload


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError("three is right out")
    return x * x


def _fig5_jobs(entries=(8, 16, 32), kernels=("vecadd", "matmul")):
    """A Fig. 5-class grid: TLB size sweep across kernels."""
    return [ExperimentJob("svm", workload(kernel, scale="tiny"),
                          HarnessConfig(tlb_entries=e))
            for kernel in kernels for e in entries]


@pytest.fixture()
def broker(tmp_path):
    broker = SQLiteBroker(tmp_path / "broker.db")
    yield broker
    broker.close()


# ---------------------------------------------------------------------------
# Bit-identical results through the runner seam
# ---------------------------------------------------------------------------
def test_drain_only_sweep_matches_serial(broker):
    jobs = _fig5_jobs()
    serial = SweepRunner(jobs=1).map(run_job, jobs)
    runner = DistributedRunner(broker, workers=0, cache=MemoCache(),
                               drain=True)
    assert runner.map(run_job, jobs) == serial
    assert runner.stats.points_submitted == len(jobs)
    assert runner.stats.points_executed == len(jobs)
    assert runner.stats.failed_jobs == 0
    assert sum(runner.stats.tier_counts.values()) == len(jobs)
    assert "run_job" in runner.timings


def test_sweep_api_accepts_distributed_runner(broker):
    grid = Grid(kernel=("vecadd",), tlb_entries=(8, 16))
    build = lambda kernel, tlb_entries: ExperimentJob(  # noqa: E731
        "svm", workload(kernel, scale="tiny"),
        HarnessConfig(tlb_entries=tlb_entries))
    serial = grid.sweep(build, label="fig5").run()
    distributed = grid.sweep(build, label="fig5").run(
        DistributedRunner(broker, cache=MemoCache()))
    assert distributed.outcomes() == serial.outcomes()
    assert distributed.axes() == serial.axes()


def test_run_stream_yields_every_point_once(broker):
    grid = Grid(kernel=("vecadd",), tlb_entries=(8, 16, 32))
    build = lambda kernel, tlb_entries: ExperimentJob(  # noqa: E731
        "svm", workload(kernel, scale="tiny"),
        HarnessConfig(tlb_entries=tlb_entries))
    sweep = grid.sweep(build, label="fig5")
    expected = grid.sweep(build, label="fig5").run()

    pairs = list(sweep.run_stream(DistributedRunner(broker,
                                                    cache=MemoCache())))
    assert len(pairs) == 3
    rebuilt = SweepOutcomes([p for p, _ in pairs], [r for _, r in pairs])
    for coords, outcome in expected.items():
        assert rebuilt.get(**coords) == outcome


def test_run_stream_works_with_plain_runner():
    grid = Grid(kernel=("vecadd",), tlb_entries=(8, 16))
    build = lambda kernel, tlb_entries: ExperimentJob(  # noqa: E731
        "svm", workload(kernel, scale="tiny"),
        HarnessConfig(tlb_entries=tlb_entries))
    pairs = list(grid.sweep(build).run_stream(SweepRunner(jobs=1)))
    expected = grid.sweep(build).run()
    assert [r for _, r in pairs] == expected.outcomes()


# ---------------------------------------------------------------------------
# Fleet-wide memo store
# ---------------------------------------------------------------------------
def test_shared_disk_cache_serves_repeat_runs(tmp_path):
    jobs = _fig5_jobs(entries=(8, 16), kernels=("vecadd",))
    cache_dir = tmp_path / "fleet-cache"

    first_broker = SQLiteBroker(tmp_path / "b1.db")
    first = DistributedRunner(first_broker, cache=MemoCache(path=cache_dir))
    baseline = first.map(run_job, jobs)
    first_broker.close()
    assert first.stats.points_executed == len(jobs)

    # A different runner, a *fresh* broker: only the shared cache persists.
    second_broker = SQLiteBroker(tmp_path / "b2.db")
    second = DistributedRunner(second_broker,
                               cache=MemoCache(path=cache_dir))
    assert second.map(run_job, jobs) == baseline
    second_broker.close()
    assert second.stats.points_executed == 0
    assert second.stats.cache_hits == len(jobs)


def test_broker_result_table_serves_repeat_submissions(broker):
    """Even cache-less repeats dedup through the broker's result table."""
    jobs = _fig5_jobs(entries=(8,), kernels=("vecadd",))
    first = DistributedRunner(broker, cache=MemoCache())
    baseline = first.map(run_job, jobs)

    second = DistributedRunner(broker, cache=MemoCache())
    assert second.map(run_job, jobs) == baseline
    assert second.stats.points_executed == 0
    assert second.stats.cache_hits == len(jobs)


def test_duplicate_items_execute_once(broker):
    job = _fig5_jobs(entries=(8,), kernels=("vecadd",))[0]
    other = _fig5_jobs(entries=(16,), kernels=("vecadd",))[0]
    runner = DistributedRunner(broker, cache=MemoCache())
    results = runner.map(run_job, [job, job, other])
    assert results[0] == results[1]
    assert runner.stats.points_executed == 2
    assert runner.stats.cache_hits == 1


# ---------------------------------------------------------------------------
# Failure semantics
# ---------------------------------------------------------------------------
def test_failed_job_raises_eagerly_and_cancels_sweep(broker):
    runner = DistributedRunner(broker, cache=MemoCache())
    with pytest.raises(DistributedJobError) as excinfo:
        runner.map(fail_on_three, [1, 2, 3, 4, 5])
    assert "three is right out" in str(excinfo.value)
    assert runner.stats.failed_jobs == 1

    (status,) = [s for s in broker.sweeps()]
    assert status["sweep_cancelled"]
    assert status["failed"] >= 1

    # The runner stays usable for the next sweep.
    assert runner.map(square, [2, 4]) == [4, 16]


def test_unkeyable_fn_falls_back_to_local_evaluation(broker):
    runner = DistributedRunner(broker, cache=MemoCache())
    assert runner.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    assert runner.stats.serial_batches == 1      # local fallback path
    assert broker.sweeps() == []                 # nothing reached the broker


def test_timeout_bounds_a_stalled_sweep(broker):
    """With no workers and no drain, an unserved sweep times out."""
    runner = DistributedRunner(broker, cache=MemoCache(), drain=False,
                               poll_interval=0.01, timeout=0.2)
    with pytest.raises(TimeoutError):
        runner.map(square, [1, 2])


# ---------------------------------------------------------------------------
# Crash recovery
# ---------------------------------------------------------------------------
class _CrashStagingBroker(SQLiteBroker):
    """Leases the first job to a worker that immediately 'dies'.

    After every ``create_sweep`` the first job is claimed by a phantom
    worker and the clock is advanced past its lease — exactly the state a
    real crash leaves behind — so whoever drains next must recover it.
    """

    def __init__(self, path, clock):
        super().__init__(path, lease_seconds=10.0, clock=clock)
        self._staging = False

    def create_sweep(self, items, label="sweep", spec=None, memo=None):
        ticket = super().create_sweep(items, label=label, spec=spec,
                                      memo=memo)
        if not self._staging:
            self._staging = True
            try:
                if self.claim("phantom-crash") is not None:
                    self.clock.advance(11.0)     # let the lease lapse
            finally:
                self._staging = False
        return ticket


class _AdvancingClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def test_crashed_worker_job_is_reexecuted_bit_identically(tmp_path):
    clock = _AdvancingClock()
    broker = _CrashStagingBroker(tmp_path / "crash.db", clock)
    jobs = _fig5_jobs(entries=(8, 16), kernels=("vecadd",))
    serial = SweepRunner(jobs=1).map(run_job, jobs)

    runner = DistributedRunner(broker, cache=MemoCache(), drain=True)
    assert runner.map(run_job, jobs) == serial
    broker.close()
    # The crashed job was claimed twice: once by the phantom, once by the
    # recovering drain loop.
    assert runner.stats.retries == 1


def test_kill_one_of_two_workers_mid_sweep_stays_bit_identical(tmp_path):
    """The acceptance scenario: 2 real workers, one SIGKILLed mid-run."""
    jobs = _fig5_jobs(entries=(4, 8, 16, 32), kernels=("vecadd", "matmul"))
    serial = SweepRunner(jobs=1).map(run_job, jobs)

    broker = SQLiteBroker(tmp_path / "fleet.db", lease_seconds=0.5)
    runner = DistributedRunner(broker, workers=2,
                               cache=MemoCache(path=tmp_path / "cache"),
                               drain=True, lease_seconds=0.5,
                               timeout=120.0)
    results = [None] * len(jobs)
    stream = runner.map_stream(run_job, jobs)
    position, value = next(stream)               # fleet is live
    results[position] = value
    victims = [p for p in runner.worker_processes if p.is_alive()]
    if victims:                                  # kill one mid-sweep
        victims[0].kill()
    for position, value in stream:
        results[position] = value
    broker.close()
    assert results == serial


def test_spawned_workers_are_reaped_after_map(tmp_path):
    broker = SQLiteBroker(tmp_path / "b.db", lease_seconds=5.0)
    runner = DistributedRunner(broker, workers=1,
                               cache=MemoCache(path=tmp_path / "cache"),
                               drain=True, timeout=120.0)
    jobs = _fig5_jobs(entries=(8,), kernels=("vecadd",))
    runner.map(run_job, jobs)
    broker.close()
    assert runner.worker_processes == []


# ---------------------------------------------------------------------------
# Summary surface
# ---------------------------------------------------------------------------
def test_summary_includes_distributed_line(broker):
    runner = DistributedRunner(broker, cache=MemoCache())
    runner.map(square, [1, 2])
    text = runner.summary()
    assert "distributed:" in text and "drain=True" in text
    data = runner.summary_dict()
    assert data["stats"]["points_executed"] == 2
    assert data["stats"]["retries"] == 0


def test_runner_rejects_negative_workers(broker):
    with pytest.raises(ValueError):
        DistributedRunner(broker, workers=-1)


def test_path_broker_is_constructed_on_demand(tmp_path):
    runner = DistributedRunner(tmp_path / "auto.db", cache=MemoCache())
    assert runner.map(square, [3]) == [9]
    assert isinstance(runner.broker, SQLiteBroker)
    runner.broker.close()


# ---------------------------------------------------------------------------
# Persistent results store through the distributed seam
# ---------------------------------------------------------------------------
def test_distributed_runner_records_to_results_store(broker, tmp_path):
    from repro.exec.keys import stable_key
    from repro.store import ResultsStore

    store = ResultsStore(tmp_path / "results.db", sha="feed" * 3)
    jobs = _fig5_jobs(entries=(8, 16), kernels=("vecadd",))
    coords = [{"tlb_entries": 8}, {"tlb_entries": 16}]
    runner = DistributedRunner(broker, cache=MemoCache(), results=store)
    outcomes = runner.map(run_job, jobs, label="fig5", coords=coords)

    rows = store.query(experiment="fig5")
    assert len(rows) == 2
    assert [row["tlb_entries"] for row in rows] == [8, 16]
    assert [row["total_cycles"] for row in rows] == [o.total_cycles
                                                     for o in outcomes]
    assert all(row["kernel"] == "vecadd" for row in rows)
    # Stored values adopt into a fresh sweep without any execution.
    for job, outcome in zip(jobs, outcomes):
        assert store.get_value(stable_key(run_job, job)) == outcome


def test_distributed_runner_adopts_results_store_rows(tmp_path):
    """A cold cache plus a warm store: every point resolves at enqueue."""
    from repro.store import ResultsStore

    store = ResultsStore(tmp_path / "results.db", sha="feed" * 3)
    jobs = _fig5_jobs(entries=(8, 16), kernels=("vecadd",))
    serial = SweepRunner(jobs=1, results=store).map(run_job, jobs,
                                                    label="seed")

    fresh_broker = SQLiteBroker(tmp_path / "fresh.db")
    try:
        runner = DistributedRunner(fresh_broker, cache=MemoCache(),
                                   results=store)
        assert runner.map(run_job, jobs, label="fig5") == serial
        assert runner.stats.points_executed == 0
        assert runner.stats.cache_hits == len(jobs)
    finally:
        fresh_broker.close()
