"""Unit tests for the software, copy-DMA and ideal baselines."""

import pytest

from repro.baselines.copydma import CopyDMAAccelerator, CopyModelConfig
from repro.baselines.ideal import IdealAccelerator
from repro.baselines.software import SoftwareCPU, SoftwareCPUConfig
from repro.core.platform import ClockConfig, Platform
from repro.hwthread.hls import schedule_for
from repro.sim.process import Access, Burst, Compute, Fence, run_functional
from repro.workloads import workload


# ------------------------------------------------------------------ software
def test_software_compute_scaled_by_schedule_and_cpi():
    cpu = SoftwareCPU(SoftwareCPUConfig(cycles_per_op=2.0,
                                        issue_cycles_per_element=0.0),
                      clocks=ClockConfig(fabric_mhz=100, host_mhz=100))
    schedule = schedule_for("vecadd")   # unroll 2, II 1, 1 op/item
    result = cpu.run_ops([Compute(100)], schedule=schedule)
    # 100 fabric cycles at 2 items/cycle * 1 op/item = 200 ops * 2 cpi = 400.
    assert result.host_cycles == 400
    assert result.fabric_cycles == 400   # 1:1 clock ratio


def test_software_clock_ratio_converts_to_fabric_cycles():
    cpu = SoftwareCPU(SoftwareCPUConfig(issue_cycles_per_element=0.0),
                      clocks=ClockConfig(fabric_mhz=100, host_mhz=800))
    result = cpu.run_ops([Compute(100)], schedule=schedule_for("vecadd"))
    assert result.fabric_cycles == pytest.approx(result.host_cycles / 8, abs=1)


def test_software_memory_cost_reflects_cache_behaviour():
    cpu = SoftwareCPU()
    streaming = cpu.run_ops([Burst(addr=i * 256, count=64, size=4)
                             for i in range(64)])
    assert streaming.l1_hit_rate > 0.8      # spatial locality within lines
    assert streaming.elements_accessed == 64 * 64


def test_software_random_accesses_cost_more_than_sequential():
    cpu = SoftwareCPU()
    sequential = cpu.run_ops([Access(addr=i * 4) for i in range(2048)])
    cpu2 = SoftwareCPU()
    random_like = cpu2.run_ops([Access(addr=(i * 7919 * 64) % (1 << 22))
                                for i in range(2048)])
    assert random_like.host_cycles > sequential.host_cycles


def test_software_fence_and_yield_are_free():
    cpu = SoftwareCPU()
    result = cpu.run_ops([Fence()])
    assert result.host_cycles == 0


def test_software_multithreaded_makespan_shorter_than_serial():
    cpu = SoftwareCPU()
    spec = workload("vecadd", scale="tiny")
    platform = Platform()
    streams = []
    for i in range(2):
        bound = workload("vecadd", scale="tiny").bind(platform.space) \
            if i == 0 else workload("saxpy", scale="tiny").bind(platform.space)
        streams.append(run_functional(bound.make_kernel()))
    single = cpu.run_threads(streams[:1])
    both = cpu.run_threads(streams)
    assert both.host_cycles < single.host_cycles * 2
    assert len(both.per_thread_host_cycles) == 2


def test_software_config_validation():
    with pytest.raises(ValueError):
        SoftwareCPUConfig(cycles_per_op=0)


# ------------------------------------------------------------------ ideal
def test_ideal_accelerator_runs_workload():
    platform = Platform()
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    result = IdealAccelerator().run(platform, bound.make_kernel())
    assert result.fabric_cycles > 0
    assert result.mem_bytes == bound.touched_bytes


def test_ideal_requires_resident_pages():
    platform = Platform()
    bound = workload("vecadd", scale="tiny", residency=0.0).bind(platform.space)
    with pytest.raises(KeyError):
        IdealAccelerator().run(platform, bound.make_kernel())


# ------------------------------------------------------------------ copydma
def test_copydma_total_is_sum_of_phases():
    platform = Platform()
    bound = workload("saxpy", scale="tiny").bind(platform.space)
    result = CopyDMAAccelerator().run(platform, bound.make_kernel(),
                                      copy_in_bytes=bound.copy_in_bytes,
                                      copy_out_bytes=bound.copy_out_bytes)
    assert result.total_cycles == (result.alloc_cycles + result.copy_in_cycles
                                   + result.fabric_cycles + result.copy_out_cycles)
    assert result.marshalling_cycles == result.total_cycles - result.fabric_cycles


def test_copydma_copy_cost_scales_with_bytes():
    platform = Platform()
    bound = workload("saxpy", scale="tiny").bind(platform.space)
    small = CopyDMAAccelerator().run(platform, bound.make_kernel(),
                                     copy_in_bytes=4096, copy_out_bytes=0)
    platform2 = Platform()
    bound2 = workload("saxpy", scale="tiny").bind(platform2.space)
    large = CopyDMAAccelerator().run(platform2, bound2.make_kernel(),
                                     copy_in_bytes=4 * 1024 * 1024,
                                     copy_out_bytes=0)
    assert large.copy_in_cycles > small.copy_in_cycles * 10


def test_copydma_marshalling_items_add_cost():
    platform = Platform()
    bound = workload("linked_list", scale="tiny").bind(platform.space)
    plain = CopyDMAAccelerator().run(platform, bound.make_kernel(),
                                     copy_in_bytes=bound.copy_in_bytes,
                                     copy_out_bytes=0, marshal_items=0)
    platform2 = Platform()
    bound2 = workload("linked_list", scale="tiny").bind(platform2.space)
    marshalled = CopyDMAAccelerator().run(platform2, bound2.make_kernel(),
                                          copy_in_bytes=bound2.copy_in_bytes,
                                          copy_out_bytes=0,
                                          marshal_items=bound2.marshal_items)
    assert marshalled.copy_in_cycles > plain.copy_in_cycles


def test_copydma_zero_copy_bytes_are_free():
    platform = Platform()
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    result = CopyDMAAccelerator().run(platform, bound.make_kernel(),
                                      copy_in_bytes=0, copy_out_bytes=0)
    assert result.copy_in_cycles == 0
    assert result.copy_out_cycles == 0


def test_copydma_rejects_negative_sizes():
    platform = Platform()
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    with pytest.raises(ValueError):
        CopyDMAAccelerator().run(platform, bound.make_kernel(),
                                 copy_in_bytes=-1, copy_out_bytes=0)


def test_copy_model_config_validation():
    with pytest.raises(ValueError):
        CopyModelConfig(copy_bytes_per_host_cycle=0)
    with pytest.raises(ValueError):
        CopyModelConfig(marshal_host_cycles_per_item=-1)


# ------------------------------------------------------------------ clocks
def test_clock_conversion_rounds_up():
    clocks = ClockConfig(fabric_mhz=100, host_mhz=667)
    assert clocks.host_to_fabric(0) == 0
    assert clocks.host_to_fabric(667) == 100
    assert clocks.host_to_fabric(1) == 1
    with pytest.raises(ValueError):
        clocks.host_to_fabric(-5)
    with pytest.raises(ValueError):
        ClockConfig(fabric_mhz=0)
