"""Tests for the SQLite work-queue broker and the fleet worker loop."""

import pickle

import pytest

from repro.dist import SQLiteBroker, Worker, WorkItem
from repro.exec import MemoCache


class FakeClock:
    """Deterministic time source: leases/backoff advance only on demand."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom on {x}")


def sleepy(x):
    import time
    time.sleep(1.0)
    return x


def _item(key, fn=square, arg=2, meta=None):
    return WorkItem(key=key, payload=pickle.dumps((fn, arg)), meta=meta)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def broker(tmp_path, clock):
    broker = SQLiteBroker(tmp_path / "broker.db", lease_seconds=10.0,
                          max_attempts=3, backoff_seconds=1.0, clock=clock)
    yield broker
    broker.close()


# ---------------------------------------------------------------------------
# Enqueue / claim / complete
# ---------------------------------------------------------------------------
def test_claim_complete_roundtrip(broker):
    ticket = broker.create_sweep([_item("k0", arg=3), _item("k1", arg=4)],
                                 label="t")
    assert ticket.total == 2 and ticket.already_done == 0

    claim = broker.claim("w1")
    assert claim.key == "k0" and claim.attempts == 1
    fn, arg = pickle.loads(claim.payload)
    assert broker.complete(claim.key, fn(arg), worker="w1") is True

    status = broker.status(ticket.sweep_id)
    assert status["done"] == 1 and status["pending"] == 1
    assert not status["finished"]

    claim2 = broker.claim("w1")
    broker.complete(claim2.key, 16, worker="w1")
    status = broker.status(ticket.sweep_id)
    assert status["finished"] and status["done_fraction"] == 1.0

    results = broker.fetch_results(ticket.sweep_id)
    assert [(r.position, r.state, r.value) for r in results] == [
        (0, "done", 9), (1, "done", 16)]


def test_claims_are_exclusive(broker):
    broker.create_sweep([_item("k0")])
    assert broker.claim("w1") is not None
    assert broker.claim("w2") is None           # leased, not expired


def test_unknown_sweep_raises(broker):
    with pytest.raises(KeyError):
        broker.status("nope")


def test_status_separates_job_counts_from_sweep_flag(broker):
    ticket = broker.create_sweep([_item("k0")])
    broker.cancel(ticket.sweep_id)
    status = broker.status(ticket.sweep_id)
    assert status["sweep_cancelled"] is True
    assert status["cancelled"] == 1             # the per-job state count


# ---------------------------------------------------------------------------
# Fleet-wide dedup: memo store and result table
# ---------------------------------------------------------------------------
def test_enqueue_consults_memo_store(broker):
    memo = MemoCache()
    memo.put("k0", 99)
    ticket = broker.create_sweep([_item("k0"), _item("k1")], memo=memo)
    assert ticket.already_done == 1
    assert ticket.done_keys == frozenset({"k0"})
    # The memo hit is immediately streamable, without any worker.
    (done,) = broker.fetch_results(ticket.sweep_id)
    assert done.position == 0 and done.value == 99 and done.worker == "memo"
    # Only the miss is claimable.
    assert broker.claim("w1").key == "k1"
    assert broker.claim("w1") is None


def test_enqueue_consults_own_result_table(broker):
    first = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.complete(claim.key, 123)
    assert broker.status(first.sweep_id)["finished"]

    second = broker.create_sweep([_item("k0")])
    assert second.already_done == 1
    (done,) = broker.fetch_results(second.sweep_id)
    assert done.value == 123


def test_duplicate_keys_within_a_sweep_execute_once(broker):
    ticket = broker.create_sweep([_item("k0"), _item("k0"), _item("k1")])
    # The duplicate k0 is not claimable while the first copy is in flight;
    # completing the key resolves both positions.
    claims = [broker.claim("w1"), broker.claim("w2")]
    assert [c.key for c in claims] == ["k0", "k1"]
    assert broker.claim("w3") is None
    for claim in claims:
        broker.complete(claim.key, 7)
    status = broker.status(ticket.sweep_id)
    assert status["done"] == 3 and status["finished"]


def test_completion_is_idempotent_first_result_wins(broker):
    broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    assert broker.complete(claim.key, 111, worker="w1") is True
    assert broker.complete(claim.key, 222, worker="w2") is False
    (result,) = broker.fetch_results(claim.sweep_id)
    assert result.value == 111                   # the duplicate was dropped


def test_completion_resolves_same_key_across_sweeps(broker):
    a = broker.create_sweep([_item("k0")])
    b = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.complete(claim.key, 5)
    assert broker.status(a.sweep_id)["finished"]
    assert broker.status(b.sweep_id)["finished"]


# ---------------------------------------------------------------------------
# Leases, retries, backoff
# ---------------------------------------------------------------------------
def test_expired_lease_is_reclaimed(broker, clock):
    broker.create_sweep([_item("k0")])
    first = broker.claim("dead-worker")
    assert first.attempts == 1
    assert broker.claim("w2") is None            # lease still live
    clock.advance(11.0)
    second = broker.claim("w2")
    assert second is not None and second.key == "k0"
    assert second.attempts == 2


def test_lease_expiry_respects_max_attempts(broker, clock):
    ticket = broker.create_sweep([_item("k0")])
    for _ in range(3):                           # max_attempts crashes
        assert broker.claim("crashy") is not None
        clock.advance(11.0)
    assert broker.claim("w2") is None
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed"
    assert "lease expired" in result.error
    assert broker.retries(ticket.sweep_id) == 2


def test_heartbeat_extends_lease(broker, clock):
    broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    clock.advance(8.0)
    assert broker.heartbeat(claim) is True
    clock.advance(8.0)                           # past original expiry
    assert broker.claim("w2") is None            # still leased thanks to beat


def test_heartbeat_reports_lost_lease(broker, clock):
    broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    clock.advance(11.0)
    assert broker.claim("w2") is not None        # re-leased to someone else
    assert broker.heartbeat(claim) is False


def test_transient_failure_retries_with_exponential_backoff(broker, clock):
    ticket = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.fail(claim, "flaky", transient=True)
    assert broker.claim("w1") is None            # backoff: 1.0s not elapsed
    clock.advance(1.5)
    claim = broker.claim("w1")
    assert claim.attempts == 2
    broker.fail(claim, "flaky again", transient=True)
    clock.advance(1.5)
    assert broker.claim("w1") is None            # second backoff doubled to 2s
    clock.advance(1.0)
    claim = broker.claim("w1")
    assert claim.attempts == 3
    broker.fail(claim, "flaky forever", transient=True)
    (result,) = broker.fetch_results(ticket.sweep_id)   # retries exhausted
    assert result.state == "failed" and "flaky forever" in result.error


def test_permanent_failure_parks_immediately(broker):
    ticket = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.fail(claim, "ValueError: boom", transient=False)
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed" and "boom" in result.error
    assert broker.claim("w2") is None


def test_stale_failure_cannot_clobber_a_reclaim(broker, clock):
    """A crashed-then-revived worker's late fail() is a no-op."""
    ticket = broker.create_sweep([_item("k0")])
    stale = broker.claim("w1")
    clock.advance(11.0)
    fresh = broker.claim("w2")
    assert fresh.attempts == 2
    broker.fail(stale, "late report", transient=False)   # guarded by attempts
    assert broker.status(ticket.sweep_id)["leased"] == 1
    broker.complete(fresh.key, 42)
    assert broker.status(ticket.sweep_id)["finished"]


def test_cancel_stops_scheduling(broker):
    ticket = broker.create_sweep([_item("k0"), _item("k1")])
    running = broker.claim("w1")
    assert broker.cancel(ticket.sweep_id) == 1   # the still-pending job
    assert broker.claim("w2") is None
    status = broker.status(ticket.sweep_id)
    assert status["sweep_cancelled"] and status["cancelled"] == 1
    # The leased job may still finish; its result stays reusable.
    assert broker.complete(running.key, 1) is True


# ---------------------------------------------------------------------------
# Persistence
# ---------------------------------------------------------------------------
def test_state_survives_reopen(tmp_path, clock):
    path = tmp_path / "broker.db"
    broker = SQLiteBroker(path, clock=clock)
    ticket = broker.create_sweep([_item("k0", arg=6)], label="persist")
    claim = broker.claim("w1")
    broker.complete(claim.key, 36)
    broker.close()

    reopened = SQLiteBroker(path, clock=clock)
    try:
        status = reopened.status(ticket.sweep_id)
        assert status["label"] == "persist" and status["finished"]
        (result,) = reopened.fetch_results(ticket.sweep_id)
        assert result.value == 36
    finally:
        reopened.close()


# ---------------------------------------------------------------------------
# Worker loop
# ---------------------------------------------------------------------------
def test_worker_executes_and_memoizes(broker):
    memo = MemoCache()
    ticket = broker.create_sweep([_item("k0", arg=5), _item("k1", arg=6)])
    worker = Worker(broker, memo=memo, worker_id="w1")
    assert worker.run_until_idle() == 2
    assert [r.value for r in broker.fetch_results(ticket.sweep_id)] == [25, 36]
    assert memo.get("k0") == 25 and memo.get("k1") == 36


def test_worker_classifies_raising_fn_as_permanent(broker):
    ticket = broker.create_sweep([_item("k0", fn=boom, arg=1)])
    worker = Worker(broker, worker_id="w1")
    assert worker.run_until_idle() == 1          # one job processed...
    assert worker.jobs_run == 0                  # ...but it did not succeed
    assert worker.failures == 1
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed"
    assert "ValueError" in result.error and "boom" in result.error


def test_worker_classifies_bad_payload_as_transient(broker, clock):
    ticket = broker.create_sweep(
        [WorkItem(key="k0", payload=b"not a pickle")])
    worker = Worker(broker, worker_id="w1")
    worker.run_until_idle()
    assert worker.failures == 1
    # Transient: requeued with backoff, not parked.
    assert broker.status(ticket.sweep_id)["pending"] == 1
    clock.advance(100.0)
    worker.run_until_idle()                      # attempt 2
    clock.advance(100.0)
    worker.run_until_idle()                      # attempt 3: retries exhausted
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed"


def test_worker_heartbeat_keeps_long_jobs_leased(tmp_path):
    """A job longer than its lease is not stolen while its worker is alive."""
    import time as time_mod

    broker = SQLiteBroker(tmp_path / "hb.db", lease_seconds=0.4)
    try:
        broker.create_sweep(
            [WorkItem(key="k0", payload=pickle.dumps((sleepy, 1)))])
        import threading
        worker = Worker(broker, worker_id="w1")
        thread = threading.Thread(target=worker.run_one)
        thread.start()
        try:
            time_mod.sleep(0.6)                  # past the original lease
            assert broker.claim("thief") is None
        finally:
            thread.join()
        assert worker.jobs_run == 1
        (result,) = broker.fetch_results(broker.sweeps()[0]["sweep_id"])
        assert result.state == "done" and result.value == 1
    finally:
        broker.close()


def test_enqueue_consults_results_store(broker, tmp_path):
    from repro.store import ResultsStore

    store = ResultsStore(tmp_path / "results.db", sha="cafe" * 3)
    store.record("k0", 99, experiment="past-run")
    ticket = broker.create_sweep([_item("k0"), _item("k1")], results=store)
    assert ticket.already_done == 1
    assert ticket.done_keys == frozenset({"k0"})
    (done,) = broker.fetch_results(ticket.sweep_id)
    assert done.position == 0 and done.value == 99 and done.worker == "store"
    # Only the store miss is claimable.
    assert broker.claim("w1").key == "k1"
    assert broker.claim("w1") is None


def test_enqueue_prefers_memo_over_results_store(broker, tmp_path):
    from repro.store import ResultsStore

    memo = MemoCache()
    memo.put("k0", 1)
    store = ResultsStore(tmp_path / "results.db", sha="cafe" * 3)
    store.record("k0", 2)
    ticket = broker.create_sweep([_item("k0")], memo=memo, results=store)
    assert ticket.already_done == 1
    (done,) = broker.fetch_results(ticket.sweep_id)
    assert done.value == 1 and done.worker == "memo"
