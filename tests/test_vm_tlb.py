"""Unit and property tests for the TLB."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.tlb import TLB, TLBConfig


def test_miss_then_hit_after_insert():
    tlb = TLB(TLBConfig(entries=4))
    assert tlb.lookup(5) is None
    tlb.insert(5, frame=50, writable=True)
    entry = tlb.lookup(5)
    assert entry is not None
    assert entry.frame == 50
    assert tlb.hits == 1 and tlb.misses == 1


def test_capacity_bounded_and_eviction_counted():
    tlb = TLB(TLBConfig(entries=4))
    for vpn in range(10):
        tlb.insert(vpn, frame=vpn, writable=True)
    assert tlb.occupancy == 4
    assert tlb.evictions == 6


def test_lru_keeps_recently_used():
    tlb = TLB(TLBConfig(entries=2, replacement="lru"))
    tlb.insert(1, 1, True)
    tlb.insert(2, 2, True)
    tlb.lookup(1)                    # 1 becomes MRU
    tlb.insert(3, 3, True)           # evicts 2
    assert tlb.lookup(1) is not None
    assert tlb.lookup(2) is None
    assert tlb.lookup(3) is not None


def test_fifo_evicts_oldest_regardless_of_use():
    tlb = TLB(TLBConfig(entries=2, replacement="fifo"))
    tlb.insert(1, 1, True)
    tlb.insert(2, 2, True)
    tlb.lookup(1)
    tlb.insert(3, 3, True)           # evicts 1 (oldest insert)
    assert tlb.lookup(1) is None
    assert tlb.lookup(2) is not None


def test_random_replacement_is_deterministic_per_seed():
    def evicted_set(seed):
        tlb = TLB(TLBConfig(entries=4, replacement="random", seed=seed))
        for vpn in range(8):
            tlb.insert(vpn, vpn, True)
        return frozenset(tlb.resident_vpns())

    assert evicted_set(1) == evicted_set(1)


def test_set_associative_indexing_and_conflicts():
    config = TLBConfig(entries=8, associativity=2)
    tlb = TLB(config)
    assert config.num_sets == 4
    # All these VPNs map to set 0 (multiples of num_sets).
    for i in range(3):
        tlb.insert(i * 4, frame=i, writable=True)
    assert tlb.occupancy == 2            # third insert evicted within set 0
    assert tlb.evictions == 1


def test_duplicate_insert_updates_in_place():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(7, frame=1, writable=False)
    tlb.insert(7, frame=2, writable=True)
    entry = tlb.lookup(7)
    assert entry.frame == 2 and entry.writable
    assert tlb.occupancy == 1


def test_asid_mismatch_is_a_miss():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(9, frame=3, writable=True, asid=1)
    assert tlb.lookup(9, asid=2) is None
    assert tlb.lookup(9, asid=1) is not None


def test_invalidate_single_entry():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(1, 1, True)
    assert tlb.invalidate(1) is True
    assert tlb.invalidate(1) is False
    assert tlb.lookup(1) is None


def test_flush_clears_everything():
    tlb = TLB(TLBConfig(entries=8))
    for vpn in range(5):
        tlb.insert(vpn, vpn, True)
    assert tlb.flush() == 5
    assert tlb.occupancy == 0
    assert tlb.flushes == 1


def test_hit_rate_and_contains():
    tlb = TLB(TLBConfig(entries=4))
    tlb.lookup(1)
    tlb.insert(1, 1, True)
    tlb.lookup(1)
    assert tlb.hit_rate == pytest.approx(0.5)
    assert 1 in tlb
    assert 2 not in tlb
    assert len(tlb) == 1


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        TLBConfig(entries=0)
    with pytest.raises(ValueError):
        TLBConfig(entries=8, associativity=3)
    with pytest.raises(ValueError):
        TLBConfig(replacement="mru")
    with pytest.raises(ValueError):
        TLBConfig(page_size=1000)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(entries=st.sampled_from([2, 4, 8, 16]),
       policy=st.sampled_from(["lru", "fifo", "random"]),
       vpns=st.lists(st.integers(min_value=0, max_value=1 << 20),
                     min_size=1, max_size=200))
def test_property_occupancy_never_exceeds_capacity(entries, policy, vpns):
    tlb = TLB(TLBConfig(entries=entries, replacement=policy))
    for vpn in vpns:
        if tlb.lookup(vpn) is None:
            tlb.insert(vpn, frame=vpn, writable=True)
        assert tlb.occupancy <= entries
    assert tlb.hits + tlb.misses == len(vpns)


@settings(max_examples=40, deadline=None)
@given(vpns=st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                     max_size=100))
def test_property_inserted_entry_translates_consistently(vpns):
    tlb = TLB(TLBConfig(entries=512))   # large enough: no evictions
    for vpn in vpns:
        tlb.insert(vpn, frame=vpn + 1000, writable=True)
    for vpn in set(vpns):
        entry = tlb.lookup(vpn)
        assert entry is not None
        assert entry.frame == vpn + 1000


@settings(max_examples=30, deadline=None)
@given(working_set=st.integers(min_value=1, max_value=8),
       accesses=st.integers(min_value=50, max_value=200))
def test_property_working_set_within_capacity_hits_after_warmup(working_set, accesses):
    tlb = TLB(TLBConfig(entries=8, replacement="lru"))
    misses_after_warmup = 0
    for i in range(accesses):
        vpn = i % working_set
        if tlb.lookup(vpn) is None:
            tlb.insert(vpn, vpn, True)
            if i >= working_set:
                misses_after_warmup += 1
    assert misses_after_warmup == 0


# ---------------------------------------------------------------------------
# ASID isolation (regression: entries used to be keyed by VPN alone, so one
# address space's insert silently overwrote another's translation)
# ---------------------------------------------------------------------------
def test_two_asids_same_vpn_coexist_with_different_frames():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(9, frame=100, writable=True, asid=1)
    tlb.insert(9, frame=200, writable=False, asid=2)
    assert tlb.occupancy == 2
    entry1 = tlb.lookup(9, asid=1)
    entry2 = tlb.lookup(9, asid=2)
    assert entry1.frame == 100 and entry1.writable
    assert entry2.frame == 200 and not entry2.writable


def test_insert_does_not_clobber_other_asid():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(5, frame=50, writable=True, asid=1)
    tlb.insert(5, frame=99, writable=True, asid=2)   # other space, same vpn
    assert tlb.lookup(5, asid=1).frame == 50          # survived untouched


def test_invalidate_is_per_asid():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(7, frame=1, writable=True, asid=1)
    tlb.insert(7, frame=2, writable=True, asid=2)
    assert tlb.invalidate(7, asid=1) is True
    assert tlb.lookup(7, asid=1) is None
    assert tlb.lookup(7, asid=2) is not None          # other space untouched
    assert tlb.invalidate(7, asid=1) is False         # already gone


def test_invalidate_wildcard_shoots_down_all_spaces():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(7, frame=1, writable=True, asid=1)
    tlb.insert(7, frame=2, writable=True, asid=2)
    assert tlb.invalidate(7) is True                  # asid=None wildcard
    assert tlb.occupancy == 0


def test_contains_and_resident_vpns_are_asid_aware():
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(3, frame=1, writable=True, asid=1)
    tlb.insert(3, frame=2, writable=True, asid=2)
    tlb.insert(4, frame=3, writable=True, asid=2)
    assert 3 in tlb                                   # bare vpn: any space
    assert (1, 3) in tlb and (2, 3) in tlb
    assert (3, 3) not in tlb
    assert sorted(tlb.resident_vpns()) == [3, 3, 4]
    assert sorted(tlb.resident_vpns(asid=1)) == [3]
    assert sorted(tlb.resident_vpns(asid=2)) == [3, 4]


def test_multi_asid_entries_contend_within_a_set():
    # Same vpn from many spaces fills the set and triggers eviction.
    tlb = TLB(TLBConfig(entries=2, replacement="lru"))
    tlb.insert(1, frame=10, writable=True, asid=1)
    tlb.insert(1, frame=20, writable=True, asid=2)
    tlb.insert(1, frame=30, writable=True, asid=3)    # evicts asid 1 (LRU)
    assert tlb.evictions == 1
    assert tlb.lookup(1, asid=1) is None
    assert tlb.lookup(1, asid=2).frame == 20
    assert tlb.lookup(1, asid=3).frame == 30


def test_mmu_invalidate_passes_asid_through():
    from repro.vm.mmu import MMU
    # The MMU forwards targeted and wildcard shootdowns to its TLB.
    tlb = TLB(TLBConfig(entries=4))
    tlb.insert(8, frame=1, writable=True, asid=1)
    tlb.insert(8, frame=2, writable=True, asid=2)
    mmu = MMU.__new__(MMU)               # translation plumbing not needed here
    mmu.tlb = tlb
    mmu.count = lambda *a, **k: None
    assert MMU.invalidate(mmu, 8, asid=1) is True
    assert (2, 8) in tlb and (1, 8) not in tlb
    assert MMU.invalidate(mmu, 8) is True             # wildcard drops the rest
    assert tlb.occupancy == 0
