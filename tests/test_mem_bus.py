"""Unit tests for the shared system bus."""

import pytest

from repro.mem.arbiter import FixedPriorityArbiter
from repro.mem.bus import BusConfig, SystemBus
from repro.mem.dram import DRAMModel
from repro.mem.port import LatencyPipe, MemoryRequest
from repro.sim.engine import Simulator


def make_bus(latency=10, **bus_overrides):
    sim = Simulator()
    target = LatencyPipe(sim, latency=latency)
    config = BusConfig(**bus_overrides) if bus_overrides else BusConfig()
    bus = SystemBus(sim, target, config)
    return sim, bus, target


def test_single_request_passes_through():
    sim, bus, target = make_bus()
    port = bus.attach_master("m0")
    done = []
    port.access(MemoryRequest(addr=0x100, size=8,
                              callback=lambda r: done.append(r)))
    sim.run()
    assert len(done) == 1
    assert done[0].complete_cycle is not None
    assert len(target.requests) == 1
    assert target.requests[0].master == "m0"


def test_bus_adds_address_and_beat_occupancy():
    sim, bus, target = make_bus(latency=0)
    port = bus.attach_master("m0")
    done = []
    port.access(MemoryRequest(addr=0, size=32,
                              callback=lambda r: done.append(sim.now)))
    sim.run()
    beats = 32 // bus.config.bus_width_bytes
    assert done[0] >= bus.config.address_phase_cycles + beats


def test_two_masters_serialised_by_arbiter():
    sim, bus, target = make_bus(latency=0)
    p0 = bus.attach_master("m0")
    p1 = bus.attach_master("m1")
    completions = []
    p0.access(MemoryRequest(addr=0, size=64,
                            callback=lambda r: completions.append(("m0", sim.now))))
    p1.access(MemoryRequest(addr=64, size=64,
                            callback=lambda r: completions.append(("m1", sim.now))))
    sim.run()
    assert len(completions) == 2
    times = [t for _, t in completions]
    assert times[0] != times[1]
    assert bus.stats.counter("requests").value == 2


def test_round_robin_alternates_between_masters():
    sim, bus, target = make_bus(latency=0)
    ports = [bus.attach_master(f"m{i}") for i in range(2)]
    for i in range(4):
        for port in ports:
            port.access(MemoryRequest(addr=i * 64, size=8))
    sim.run()
    masters = [r.master for r in target.requests]
    # With round robin no master gets two grants in a row while the other waits.
    for first, second in zip(masters, masters[1:]):
        assert not (first == second == "m0")


def test_fixed_priority_prefers_low_index():
    sim = Simulator()
    target = LatencyPipe(sim, latency=0)
    bus = SystemBus(sim, target, arbiter=FixedPriorityArbiter())
    p0 = bus.attach_master("high")
    p1 = bus.attach_master("low")
    # Queue several requests from both before any is granted.
    for i in range(3):
        p1.access(MemoryRequest(addr=i * 8, size=8))
        p0.access(MemoryRequest(addr=0x1000 + i * 8, size=8))
    sim.run()
    first_masters = [r.master for r in target.requests[:3]]
    assert first_masters.count("high") >= 2


def test_contention_is_counted():
    sim, bus, _ = make_bus(latency=0)
    p0 = bus.attach_master("m0")
    p1 = bus.attach_master("m1")
    for i in range(8):
        p0.access(MemoryRequest(addr=i * 8, size=64))
        p1.access(MemoryRequest(addr=0x10000 + i * 8, size=64))
    sim.run()
    assert bus.stats.counter("contended_grants").value > 0
    assert bus.stats.accumulators["queue_wait"].maximum > 0


def test_outstanding_limit_backpressures():
    sim, bus, _ = make_bus(latency=500, max_outstanding_per_master=2)
    port = bus.attach_master("m0")
    done = []
    for i in range(4):
        port.access(MemoryRequest(addr=i * 8, size=8,
                                  callback=lambda r: done.append(sim.now)))
    sim.run()
    assert len(done) == 4
    # With only two outstanding the last completions happen after a second
    # round trip through the 500-cycle pipe.
    assert max(done) > 500


def test_outstanding_counter_tracks_queue_and_inflight():
    sim, bus, _ = make_bus(latency=50)
    port = bus.attach_master("m0")
    for i in range(3):
        port.access(MemoryRequest(addr=i * 8, size=8))
    assert port.outstanding == 3
    sim.run()
    assert port.outstanding == 0


def test_bus_works_with_real_dram():
    sim = Simulator()
    dram = DRAMModel(sim)
    bus = SystemBus(sim, dram)
    port = bus.attach_master("hwt")
    done = []
    for i in range(16):
        port.access(MemoryRequest(addr=i * 64, size=64,
                                  callback=lambda r: done.append(r)))
    sim.run()
    assert len(done) == 16
    assert all(r.latency > 0 for r in done)


def test_utilisation_bounded():
    sim, bus, _ = make_bus(latency=0)
    port = bus.attach_master("m0")
    port.access(MemoryRequest(addr=0, size=256))
    sim.run()
    assert 0.0 < bus.utilisation(sim.now) <= 1.0


def test_invalid_bus_config_rejected():
    with pytest.raises(ValueError):
        BusConfig(bus_width_bytes=0)
    with pytest.raises(ValueError):
        BusConfig(max_outstanding_per_master=0)
    with pytest.raises(ValueError):
        BusConfig(address_phase_cycles=-1)
