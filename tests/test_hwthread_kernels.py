"""Unit and property tests for the accelerator kernel library.

The tests check the *op streams* the kernels produce: traffic volumes,
address ranges, read/write balance and dependency structure, independent of
any timing model.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hwthread import kernels
from repro.hwthread.kernels import WORD, kernel_info, kernel_names
from repro.sim.process import Access, Burst, Compute, Fence, count_bytes, run_functional


def memory_ops(ops):
    return [op for op in ops if isinstance(op, (Access, Burst))]


def addresses_of(op):
    if isinstance(op, Burst):
        return [op.addr, op.addr + op.total_bytes - 1]
    return [op.addr, op.addr + op.size - 1]


def test_vecadd_moves_exactly_three_arrays():
    n = 1024
    ops = run_functional(kernels.vecadd(0x30000, 0x10000, 0x20000, n))
    reads = sum(op.total_bytes if isinstance(op, Burst) else op.size
                for op in memory_ops(ops) if not op.is_write)
    writes = sum(op.total_bytes if isinstance(op, Burst) else op.size
                 for op in memory_ops(ops) if op.is_write)
    assert reads == 2 * n * WORD
    assert writes == n * WORD


def test_vecadd_addresses_stay_in_buffers():
    n = 512
    ops = run_functional(kernels.vecadd(0x30000, 0x10000, 0x20000, n))
    for op in memory_ops(ops):
        low, high = addresses_of(op)
        assert any(base <= low and high < base + n * WORD
                   for base in (0x10000, 0x20000, 0x30000))


def test_vecadd_non_multiple_burst_size():
    ops = run_functional(kernels.vecadd(0x3000, 0x1000, 0x2000, 100,
                                        burst_words=64))
    assert count_bytes(ops) == 3 * 100 * WORD


def test_saxpy_has_compute_between_loads_and_store():
    ops = run_functional(kernels.saxpy(0x3000, 0x1000, 0x2000, 64))
    kinds = [type(op).__name__ for op in ops[:4]]
    assert kinds == ["Burst", "Burst", "Compute", "Burst"]


def test_matmul_traffic_scales_with_blocking():
    n, block = 64, 32
    ops = run_functional(kernels.matmul(0x100000, 0x10000, 0x80000, n, block=block))
    blocks = n // block
    expected_reads = 2 * blocks * n * n * WORD      # A and B streamed per block pass
    reads = sum(op.total_bytes for op in memory_ops(ops)
                if isinstance(op, Burst) and not op.is_write)
    writes = sum(op.total_bytes for op in memory_ops(ops)
                 if isinstance(op, Burst) and op.is_write)
    assert reads == expected_reads
    assert writes == n * n * WORD


def test_matmul_requires_divisible_block():
    with pytest.raises(ValueError):
        run_functional(kernels.matmul(0, 0, 0, 100, block=32))


def test_matmul_compute_cycles_reflect_cubic_work():
    small = run_functional(kernels.matmul(0, 0x100000, 0x200000, 32, block=32))
    large = run_functional(kernels.matmul(0, 0x100000, 0x200000, 64, block=32))
    cycles_small = sum(op.cycles for op in small if isinstance(op, Compute))
    cycles_large = sum(op.cycles for op in large if isinstance(op, Compute))
    assert cycles_large > 6 * cycles_small          # ~8x for 2x matrix size


def test_merge_sort_makes_log2n_passes():
    n = 1024
    ops = run_functional(kernels.merge_sort(0x10000, 0x20000, n))
    bytes_moved = count_bytes(ops)
    assert bytes_moved == 2 * n * WORD * 10         # log2(1024) = 10 passes


def test_filter2d_reads_and_writes_whole_image_once():
    width, height = 32, 16
    ops = run_functional(kernels.filter2d(0x80000, 0x10000, width, height))
    reads = sum(op.total_bytes for op in memory_ops(ops) if not op.is_write)
    writes = sum(op.total_bytes for op in memory_ops(ops) if op.is_write)
    assert reads == width * height * WORD
    assert writes == width * (height - 2) * WORD    # border rows not written


def test_linked_list_is_fully_serialised():
    chain = [0x1000, 0x5000, 0x2000]
    ops = run_functional(kernels.linked_list(chain))
    accesses = [op for op in ops if isinstance(op, Access)]
    fences = [op for op in ops if isinstance(op, Fence)]
    assert [a.addr for a in accesses] == chain
    assert len(fences) == len(chain)                # one dependency per node


def test_histogram_random_updates_are_read_modify_write():
    indices = [3, 1, 2, 0]
    ops = run_functional(kernels.histogram(0x1000, 4, 0x9000, indices,
                                           burst_words=4))
    accesses = [op for op in ops if isinstance(op, Access)]
    assert len(accesses) == 8                        # read + write per element
    assert sum(1 for a in accesses if a.is_write) == 4
    assert {a.addr for a in accesses} == {0x9000 + i * WORD for i in indices}


def test_histogram_bins_in_bram_skips_table_traffic():
    ops = run_functional(kernels.histogram(0x1000, 64, 0x9000, [0] * 64,
                                           bins_in_bram=True))
    assert not any(isinstance(op, Access) for op in ops)


def test_spmv_gathers_follow_pattern():
    row_lengths = [2, 2]
    gathers = [5, 9, 1, 3]
    ops = run_functional(kernels.spmv(row_lengths, 0x1000, 0x2000, 0x3000,
                                      0x4000, gathers))
    gather_accesses = [op.addr for op in ops
                       if isinstance(op, Access) and not op.is_write
                       and 0x3000 <= op.addr < 0x4000]
    assert gather_accesses == [0x3000 + g * WORD for g in gathers]
    y_writes = [op for op in ops if isinstance(op, Access) and op.is_write]
    assert len(y_writes) == len(row_lengths)


def test_spmv_skips_empty_rows():
    ops = run_functional(kernels.spmv([0, 3, 0], 0x1000, 0x2000, 0x3000,
                                      0x4000, [0, 1, 2]))
    y_writes = [op for op in ops if isinstance(op, Access) and op.is_write]
    assert len(y_writes) == 1


def test_random_access_respects_write_fraction():
    addresses = list(range(0x1000, 0x1000 + 100 * WORD, WORD))
    ops = run_functional(kernels.random_access(addresses, write_fraction=0.25))
    accesses = [op for op in ops if isinstance(op, Access)]
    writes = sum(1 for a in accesses if a.is_write)
    assert len(accesses) == 100
    assert writes == 25


def test_random_access_rejects_bad_fraction():
    with pytest.raises(ValueError):
        run_functional(kernels.random_access([0x1000], write_fraction=1.5))


def test_registry_is_consistent():
    names = kernel_names()
    assert "vecadd" in names and "matmul" in names
    for name in names:
        info = kernel_info(name)
        assert info.pattern in ("streaming", "blocked", "pointer", "random")
        assert info.bytes_per_item > 0
    with pytest.raises(KeyError):
        kernel_info("unknown")


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=4096),
       burst=st.sampled_from([16, 32, 64, 128]))
def test_property_vecadd_byte_volume_invariant(n, burst):
    ops = run_functional(kernels.vecadd(0x300000, 0x100000, 0x200000, n,
                                        burst_words=burst))
    assert count_bytes(ops) == 3 * n * WORD


@settings(max_examples=25, deadline=None)
@given(chain=st.lists(st.integers(min_value=0, max_value=1 << 28),
                      min_size=1, max_size=200))
def test_property_linked_list_visits_every_node_once(chain):
    addresses = [a * 16 for a in chain]
    ops = run_functional(kernels.linked_list(addresses))
    visited = [op.addr for op in ops if isinstance(op, Access)]
    assert visited == addresses


@settings(max_examples=20, deadline=None)
@given(width=st.integers(min_value=3, max_value=64),
       height=st.integers(min_value=3, max_value=32))
def test_property_filter2d_never_exceeds_image_bounds(width, height):
    src, dst = 0x100000, 0x900000
    ops = run_functional(kernels.filter2d(dst, src, width, height))
    image_bytes = width * height * WORD
    for op in memory_ops(ops):
        low, high = addresses_of(op)
        base = src if not op.is_write else dst
        assert base <= low and high < base + image_bytes
