"""Unit and property tests for the radix page table."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.vm.pagetable import PageTable, PageTableConfig
from repro.vm.types import AccessType, FaultType, PageFault, Translation


def test_config_bit_partitioning():
    config = PageTableConfig(page_size=4096, vaddr_bits=32, levels=2)
    assert config.offset_bits == 12
    assert config.vpn_bits == 20
    assert config.bits_per_level == [10, 10]


def test_config_uneven_split_goes_to_top_level():
    config = PageTableConfig(page_size=4096, vaddr_bits=32, levels=3)
    assert sum(config.bits_per_level) == 20
    assert config.bits_per_level[0] >= config.bits_per_level[1]


def test_config_rejects_bad_geometry():
    with pytest.raises(ValueError):
        PageTableConfig(page_size=1000)
    with pytest.raises(ValueError):
        PageTableConfig(levels=0)
    with pytest.raises(ValueError):
        PageTableConfig(page_size=1 << 20, vaddr_bits=20)


def test_map_and_translate_roundtrip():
    table = PageTable()
    table.map(vpn=5, frame=42)
    result = table.probe(5 * 4096 + 123, AccessType.READ)
    assert isinstance(result, Translation)
    assert result.paddr == 42 * 4096 + 123
    assert result.frame == 42
    assert result.vpn == 5


def test_unmapped_address_reports_not_mapped():
    table = PageTable()
    result = table.probe(0x12345, AccessType.READ)
    assert isinstance(result, PageFault)
    assert result.fault_type is FaultType.NOT_MAPPED


def test_not_present_page_reports_not_present():
    table = PageTable()
    table.map(vpn=7, frame=0, present=False)
    result = table.probe(7 * 4096, AccessType.READ)
    assert isinstance(result, PageFault)
    assert result.fault_type is FaultType.NOT_PRESENT


def test_write_to_readonly_is_protection_fault():
    table = PageTable()
    table.map(vpn=3, frame=9, writable=False)
    read = table.probe(3 * 4096, AccessType.READ)
    write = table.probe(3 * 4096, AccessType.WRITE)
    assert isinstance(read, Translation)
    assert isinstance(write, PageFault)
    assert write.fault_type is FaultType.PROTECTION


def test_accessed_and_dirty_bits_updated():
    table = PageTable()
    entry = table.map(vpn=1, frame=1)
    assert not entry.accessed and not entry.dirty
    table.probe(4096, AccessType.READ)
    assert entry.accessed and not entry.dirty
    table.probe(4096, AccessType.WRITE)
    assert entry.dirty


def test_unmap_removes_entry():
    table = PageTable()
    table.map(vpn=10, frame=10)
    assert table.num_mapped_pages == 1
    removed = table.unmap(10)
    assert removed is not None
    assert table.num_mapped_pages == 0
    assert table.entry(10) is None
    assert table.unmap(10) is None


def test_set_present_and_protect_and_pin():
    table = PageTable()
    table.map(vpn=2, frame=0, present=False)
    table.set_present(2, True, frame=77)
    entry = table.entry(2)
    assert entry.present and entry.frame == 77
    table.protect(2, writable=False)
    assert not entry.writable
    table.pin(2)
    assert entry.pinned


def test_mutators_raise_on_missing_vpn():
    table = PageTable()
    with pytest.raises(KeyError):
        table.set_present(99, True)
    with pytest.raises(KeyError):
        table.protect(99, True)
    with pytest.raises(KeyError):
        table.pin(99)


def test_walk_addresses_one_per_level():
    table = PageTable(PageTableConfig(levels=2))
    table.map(vpn=0x300, frame=1)
    addrs = table.walk_addresses(0x300)
    assert len(addrs) == 2
    assert len(set(addrs)) == 2


def test_walk_addresses_truncated_for_missing_intermediate():
    table = PageTable(PageTableConfig(levels=2))
    # Nothing mapped: only the root level can be read.
    addrs = table.walk_addresses(0x12345)
    assert len(addrs) == 1


def test_node_allocation_uses_custom_allocator():
    addresses = iter(range(0x8000, 0x80000, 0x100))
    table = PageTable(node_allocator=lambda: next(addresses))
    table.map(vpn=0, frame=0)
    table.map(vpn=0xFFFFF, frame=1)
    assert table.num_nodes >= 2


def test_vpn_out_of_range_rejected():
    table = PageTable(PageTableConfig(vaddr_bits=32))
    with pytest.raises(ValueError):
        table.map(vpn=1 << 20, frame=0)
    with pytest.raises(ValueError):
        table.map(vpn=-1, frame=0)


def test_mapped_vpns_enumerates_all_mappings():
    table = PageTable()
    vpns = [0, 1, 1023, 1024, 0x402, 0xFFFFF]
    for vpn in vpns:
        table.map(vpn, frame=vpn)
    assert sorted(table.mapped_vpns()) == sorted(vpns)


def test_translate_convenience_raises_on_fault():
    table = PageTable()
    with pytest.raises(KeyError):
        table.translate(0x1000)


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(vpns=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                     min_size=1, max_size=60, unique=True),
       offset=st.integers(min_value=0, max_value=4095))
def test_property_mapped_pages_translate_to_their_frames(vpns, offset):
    table = PageTable()
    for i, vpn in enumerate(vpns):
        table.map(vpn, frame=i + 1)
    for i, vpn in enumerate(vpns):
        result = table.probe(vpn * 4096 + offset, AccessType.READ)
        assert isinstance(result, Translation)
        assert result.paddr == (i + 1) * 4096 + offset


@settings(max_examples=50, deadline=None)
@given(vpns=st.lists(st.integers(min_value=0, max_value=(1 << 20) - 1),
                     min_size=1, max_size=40, unique=True))
def test_property_unmap_restores_not_mapped(vpns):
    table = PageTable()
    for vpn in vpns:
        table.map(vpn, frame=vpn)
    for vpn in vpns:
        table.unmap(vpn)
    assert table.num_mapped_pages == 0
    for vpn in vpns:
        result = table.probe(vpn * 4096, AccessType.READ)
        assert isinstance(result, PageFault)


@settings(max_examples=30, deadline=None)
@given(levels=st.integers(min_value=1, max_value=4),
       page_shift=st.sampled_from([12, 14, 16]),
       vpn=st.integers(min_value=0, max_value=(1 << 16) - 1))
def test_property_walk_addresses_has_levels_entries_when_mapped(levels, page_shift, vpn):
    config = PageTableConfig(page_size=1 << page_shift, vaddr_bits=32,
                             levels=levels)
    vpn = vpn % (1 << config.vpn_bits)
    table = PageTable(config)
    table.map(vpn, frame=1)
    assert len(table.walk_addresses(vpn)) == levels


@settings(max_examples=30, deadline=None)
@given(vpn=st.integers(min_value=0, max_value=(1 << 20) - 1),
       levels=st.integers(min_value=1, max_value=5))
def test_property_indices_reconstruct_vpn(vpn, levels):
    config = PageTableConfig(levels=levels)
    indices = config.indices(vpn)
    bits = config.bits_per_level
    reconstructed = 0
    for index, width in zip(indices, bits):
        reconstructed = (reconstructed << width) | index
    assert reconstructed == vpn
