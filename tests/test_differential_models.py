"""Differential tests across the execution-model registry.

Golden pins freeze absolute numbers for a handful of configurations; these
tests instead assert *cross-model orderings that must hold by construction*
on randomized small workloads — catching relative regressions (a variant
quietly losing its advantage, translation costs leaking into the ideal
model) that no absolute pin can see:

* ``ideal`` never loses: address translation only ever adds cycles, so every
  SVM-family model's runtime dominates the ideal accelerator's.
* ``svm-hugepage`` walks less: a single-level table cannot fetch more walker
  levels than the multi-level one, whatever the workload.
* ``svm-prefetch`` never increases demand TLB misses on pure streaming —
  the prefetcher may idle (accuracy throttle), but a correct one cannot make
  a sequential stream miss *more*.
* ``svm-shared-tlb`` degenerates exactly to ``svm`` when there is only one
  thread and one process (one sharer of the "shared" TLB).
* For N contending processes, flushing the TLB at every context switch
  (``svm`` semantics) can never miss less — or finish sooner — than ASID
  survival (``svm-shared-tlb`` semantics) on the identical slice plan.
"""

from hypothesis import given, settings, strategies as st

from repro.eval.harness import HarnessConfig, run_multiprocess
from repro.models import get_model
from repro.workloads import contention, workload

#: Per-kernel small-size overrides the randomized cases draw from.
SIZES = {
    "vecadd": ({"n": 256}, {"n": 1024}, {"n": 3072}),
    "saxpy": ({"n": 512}, {"n": 2048}),
    "linked_list": ({"nodes": 128, "node_bytes": 16},
                    {"nodes": 1024, "node_bytes": 16}),
    "random_access": ({"table_bytes": 64 * 1024, "accesses": 256},
                      {"table_bytes": 256 * 1024, "accesses": 1024}),
}

SVM_FAMILY = ("svm", "svm-prefetch", "svm-shared-tlb", "svm-hugepage")


def run_models(spec, models, config=None):
    config = config or HarnessConfig(tlb_entries=16)
    return {name: get_model(name).run(spec, config) for name in models}


@settings(max_examples=10, deadline=None)
@given(kernel=st.sampled_from(sorted(SIZES)),
       size_index=st.integers(min_value=0, max_value=7),
       seed=st.integers(min_value=0, max_value=2**16))
def test_ideal_is_a_lower_bound_for_every_svm_variant(kernel, size_index,
                                                      seed):
    overrides = SIZES[kernel][size_index % len(SIZES[kernel])]
    spec = workload(kernel, scale="tiny", seed=seed, **overrides)
    outcomes = run_models(spec, ("ideal",) + SVM_FAMILY)
    ideal = outcomes["ideal"]
    for name in SVM_FAMILY:
        assert outcomes[name].total_cycles >= ideal.total_cycles, name
        # The fabric portion alone already dominates (vm_overhead >= 1).
        assert outcomes[name].fabric_cycles >= ideal.fabric_cycles, name


@settings(max_examples=8, deadline=None)
@given(kernel=st.sampled_from(sorted(SIZES)),
       size_index=st.integers(min_value=0, max_value=7),
       seed=st.integers(min_value=0, max_value=2**16))
def test_hugepage_never_fetches_more_walker_levels(kernel, size_index, seed):
    overrides = SIZES[kernel][size_index % len(SIZES[kernel])]
    spec = workload(kernel, scale="tiny", seed=seed, **overrides)
    outcomes = run_models(spec, ("svm", "svm-hugepage"))
    assert outcomes["svm-hugepage"].breakdown["walker_levels"] <= \
        outcomes["svm"].breakdown["walker_levels"]
    # ~512x fewer pages also means no more demand misses.
    assert outcomes["svm-hugepage"].tlb_misses <= outcomes["svm"].tlb_misses


@settings(max_examples=8, deadline=None)
@given(kernel=st.sampled_from(("vecadd", "saxpy")),
       size_index=st.integers(min_value=0, max_value=7),
       seed=st.integers(min_value=0, max_value=2**16))
def test_prefetch_never_increases_misses_on_pure_streaming(kernel, size_index,
                                                           seed):
    overrides = SIZES[kernel][size_index % len(SIZES[kernel])]
    spec = workload(kernel, scale="tiny", seed=seed, **overrides)
    outcomes = run_models(spec, ("svm", "svm-prefetch"))
    assert outcomes["svm-prefetch"].tlb_misses <= outcomes["svm"].tlb_misses


@settings(max_examples=6, deadline=None)
@given(kernel=st.sampled_from(sorted(SIZES)),
       seed=st.integers(min_value=0, max_value=2**16))
def test_shared_tlb_with_one_sharer_degenerates_to_svm(kernel, seed):
    spec = workload(kernel, scale="tiny", seed=seed, **SIZES[kernel][0])
    outcomes = run_models(spec, ("svm", "svm-shared-tlb"))
    assert outcomes["svm"].total_cycles == \
        outcomes["svm-shared-tlb"].total_cycles
    assert outcomes["svm"].tlb_misses == outcomes["svm-shared-tlb"].tlb_misses


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       procs=st.integers(min_value=2, max_value=4),
       policy=st.sampled_from(("round-robin", "weighted-fair")))
def test_flush_on_switch_never_beats_asid_survival_differential(seed, procs,
                                                                policy):
    mp = contention(["vecadd"] * procs, scale="tiny", quantum=2000,
                    policy=policy, seed=seed, n=2048)
    config = HarnessConfig(tlb_entries=64)
    flushing = run_multiprocess(mp, config, flush_on_switch=True)
    surviving = run_multiprocess(mp, config)
    assert flushing.tlb_misses >= surviving.tlb_misses
    assert flushing.total_cycles >= surviving.total_cycles


# ---------------------------------------------------------------------------
# Two-tier exactness: the replay fastpath vs the event simulator
# ---------------------------------------------------------------------------
#
# The replay tier is only allowed to be *faster*, never *different*: every
# counter the event simulator produces must come back bit-for-bit identical
# from the fastpath engine, across the whole SVM family and across
# N-process contention runs.  These tests are the safety net that lets
# sweeps default to ``tier="auto"``.

import pytest

from repro.eval.harness import _build_svm_system, run_svm
from repro.fastpath.record import clear_program_cache
from repro.sim.recorder import HAVE_NUMPY, TraceRecorder, stream_equal

needs_numpy = pytest.mark.skipif(
    not HAVE_NUMPY, reason="replay tier requires numpy")

#: Every scalar field of SVMResult/RunOutcome that both tiers must agree on.
RESULT_FIELDS = ("total_cycles", "fabric_cycles", "tlb_hit_rate",
                 "tlb_misses", "faults", "software_overhead_cycles",
                 "walks", "walker_levels", "walker_cycles",
                 "miss_stall_cycles", "prefetches_issued", "prefetch_hits",
                 "context_switches")


def assert_svm_results_equal(event, replay):
    """Field-for-field equality, including the full component stats dump."""
    for name in RESULT_FIELDS:
        assert getattr(event, name) == getattr(replay, name), name
    stats_e = event.system_result.stats
    stats_r = replay.system_result.stats
    for key in sorted(set(stats_e) | set(stats_r)):
        assert stats_e.get(key) == stats_r.get(key), f"stats[{key}]"


@needs_numpy
@settings(max_examples=8, deadline=None)
@given(kernel=st.sampled_from(sorted(SIZES)),
       size_index=st.integers(min_value=0, max_value=7),
       seed=st.integers(min_value=0, max_value=2**16),
       model=st.sampled_from(SVM_FAMILY))
def test_replay_tier_matches_event_tier_exactly(kernel, size_index, seed,
                                                model):
    sizes = SIZES[kernel]
    spec = workload(kernel, scale="tiny", seed=seed,
                    **sizes[size_index % len(sizes)])
    config = HarnessConfig(tlb_entries=16)
    event = get_model(model).run(spec, config, tier="event")
    replay = get_model(model).run(spec, config, tier="replay")
    assert replay.tier == "replay"
    assert event.tier == "event"
    for name in ("total_cycles", "fabric_cycles", "tlb_hit_rate",
                 "tlb_misses", "faults", "software_overhead_cycles"):
        assert getattr(event, name) == getattr(replay, name), name
    assert event.breakdown == replay.breakdown


@needs_numpy
@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       procs=st.integers(min_value=2, max_value=3),
       policy=st.sampled_from(("round-robin", "weighted-fair")),
       flush=st.booleans())
def test_replay_tier_matches_event_tier_multiprocess(seed, procs, policy,
                                                     flush):
    mp = contention(["vecadd"] * procs, scale="tiny", quantum=2000,
                    policy=policy, seed=seed, n=2048)
    config = HarnessConfig(tlb_entries=64)
    event = run_multiprocess(mp, config, flush_on_switch=flush, tier="event")
    replay = run_multiprocess(mp, config, flush_on_switch=flush,
                              tier="replay")
    assert replay.tier == "replay"
    assert_svm_results_equal(event, replay)


@settings(max_examples=8, deadline=None)
@given(kernel=st.sampled_from(sorted(SIZES)),
       seed=st.integers(min_value=0, max_value=2**16))
def test_recorded_streams_are_deterministic(kernel, seed):
    """Binding a spec twice records the exact same op stream both times.

    This is the precondition the program cache relies on: a spec's stream
    is recorded once and reused, so recording must be a pure function of
    the spec (and the page size).
    """
    spec = workload(kernel, scale="tiny", seed=seed, **SIZES[kernel][0])
    config = HarnessConfig(tlb_entries=16)
    streams = []
    for _ in range(2):
        _, _, bound = _build_svm_system(spec, config, 1)
        streams.append(TraceRecorder.capture(bound[0].make_kernel()))
    assert streams[0].num_ops > 0
    assert stream_equal(streams[0], streams[1])


@needs_numpy
@settings(max_examples=4, deadline=None)
@given(kernel=st.sampled_from(sorted(SIZES)),
       seed=st.integers(min_value=0, max_value=2**16))
def test_replay_is_deterministic_across_cache_states(kernel, seed):
    """Cold record, re-record, and warm cache hits all replay identically."""
    spec = workload(kernel, scale="tiny", seed=seed, **SIZES[kernel][0])
    config = HarnessConfig(tlb_entries=16)
    clear_program_cache()
    cold = run_svm(spec, config, tier="replay")
    clear_program_cache()
    recold = run_svm(spec, config, tier="replay")
    warm = run_svm(spec, config, tier="replay")
    assert_svm_results_equal(cold, recold)
    assert_svm_results_equal(cold, warm)
