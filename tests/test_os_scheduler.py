"""Unit tests for the analytic round-robin software-thread scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.os.scheduler import RoundRobinScheduler, SchedulerConfig


def test_single_thread_single_core_runs_back_to_back():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=1,
                                                    quantum=1000,
                                                    context_switch_cycles=0))
    result = scheduler.run([("t0", 2500)])
    assert result["t0"].finish_time == 2500
    assert result["t0"].context_switches == 2   # two quantum expirations


def test_two_threads_two_cores_run_in_parallel():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=2, quantum=10_000,
                                                    context_switch_cycles=0))
    makespan = scheduler.makespan([("a", 5000), ("b", 5000)])
    assert makespan == 5000


def test_two_threads_one_core_serialise():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=10_000,
                                                    context_switch_cycles=0))
    makespan = scheduler.makespan([("a", 5000), ("b", 5000)])
    assert makespan == 10_000


def test_context_switch_overhead_increases_makespan():
    no_cs = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=100,
                                                context_switch_cycles=0))
    with_cs = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=100,
                                                  context_switch_cycles=50))
    demands = [("a", 1000)]
    assert with_cs.makespan(demands) > no_cs.makespan(demands)


def test_zero_demand_thread_finishes_at_time_zero():
    scheduler = RoundRobinScheduler()
    result = scheduler.run([("idle", 0), ("busy", 100)])
    assert result["idle"].finish_time == 0
    assert result["busy"].finish_time is not None


def test_empty_demand_list():
    scheduler = RoundRobinScheduler()
    assert scheduler.run([]) == {}
    assert scheduler.makespan([]) == 0


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        SchedulerConfig(num_cores=0)
    with pytest.raises(ValueError):
        SchedulerConfig(quantum=0)
    with pytest.raises(ValueError):
        SchedulerConfig(context_switch_cycles=-1)


def test_negative_demand_rejected():
    scheduler = RoundRobinScheduler()
    with pytest.raises(ValueError):
        scheduler.run([("bad", -1)])


@settings(max_examples=40, deadline=None)
@given(demands=st.lists(st.integers(min_value=0, max_value=100_000),
                        min_size=1, max_size=8),
       cores=st.integers(min_value=1, max_value=4))
def test_property_makespan_bounds(demands, cores):
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=cores,
                                                    quantum=10_000,
                                                    context_switch_cycles=0))
    named = [(f"t{i}", d) for i, d in enumerate(demands)]
    makespan = scheduler.makespan(named)
    total = sum(demands)
    longest = max(demands)
    assert makespan >= longest                  # cannot beat the longest thread
    assert makespan >= (total + cores - 1) // cores - 1  # work conservation
    assert makespan <= total                    # never worse than fully serial


# ---------------------------------------------------------------------------
# Scheduling-policy registry
# ---------------------------------------------------------------------------
def test_builtin_policies_are_registered():
    from repro.os.scheduler import registered_policies
    assert {"round-robin", "weighted-fair", "fault-aware"} <= set(
        registered_policies())


def test_unknown_policy_raises():
    from repro.os.scheduler import UnknownPolicyError, get_policy
    with pytest.raises(UnknownPolicyError):
        get_policy("no-such-policy")


def test_duplicate_policy_registration_rejected():
    from repro.os.scheduler import SchedulingPolicy, register_policy
    with pytest.raises(ValueError):
        register_policy("round-robin")(SchedulingPolicy)


def test_thread_demand_validates():
    from repro.os.scheduler import ThreadDemand
    with pytest.raises(ValueError):
        ThreadDemand("t", -1)
    with pytest.raises(ValueError):
        ThreadDemand("t", 1, weight=0.0)
    with pytest.raises(ValueError):
        ThreadDemand("t", 1, pressure=-0.5)


def test_round_robin_policy_matches_legacy_scheduler():
    from repro.os.scheduler import get_policy
    config = SchedulerConfig(num_cores=1, quantum=100,
                             context_switch_cycles=10)
    demands = [("a", 250), ("b", 120), ("c", 330)]
    assert get_policy("round-robin").plan(demands, config) == \
        RoundRobinScheduler(config).timeline(demands)


def test_weighted_fair_scales_quanta_by_weight():
    from repro.os.scheduler import ThreadDemand, get_policy
    config = SchedulerConfig(num_cores=1, quantum=1000,
                             context_switch_cycles=0)
    demands = [ThreadDemand("light", 10_000, weight=1.0),
               ThreadDemand("heavy", 10_000, weight=3.0)]
    plan = get_policy("weighted-fair").plan(demands, config)
    first = {s.thread: s.cycles for s in plan[:2]}
    # Mean weight 2.0: the heavy thread's slice is 3x the light thread's.
    assert first == {"light": 500, "heavy": 1500}
    # Work conservation: every cycle of demand is scheduled exactly once.
    totals = {"light": 0, "heavy": 0}
    for s in plan:
        totals[s.thread] += s.cycles
    assert totals == {"light": 10_000, "heavy": 10_000}


def test_fault_aware_shortens_thrashing_threads_slices():
    from repro.os.scheduler import ThreadDemand, get_policy
    config = SchedulerConfig(num_cores=1, quantum=1000,
                             context_switch_cycles=0)
    demands = [ThreadDemand("local", 10_000, pressure=0.0),
               ThreadDemand("thrash", 10_000, pressure=3.0)]
    plan = get_policy("fault-aware").plan(demands, config)
    first = {s.thread: s.cycles for s in plan[:2]}
    assert first["thrash"] < 1000 < first["local"]
    # Uniform pressure degenerates to round-robin.
    uniform = [ThreadDemand("a", 5_000, pressure=2.0),
               ThreadDemand("b", 5_000, pressure=2.0)]
    assert get_policy("fault-aware").plan(uniform, config) == \
        get_policy("round-robin").plan(uniform, config)


@settings(max_examples=40, deadline=None)
@given(demands=st.lists(st.tuples(st.integers(min_value=0, max_value=50_000),
                                  st.floats(min_value=0.25, max_value=8.0),
                                  st.floats(min_value=0.0, max_value=10.0)),
                        min_size=1, max_size=6),
       policy=st.sampled_from(["round-robin", "weighted-fair", "fault-aware"]))
def test_property_every_policy_plan_is_a_valid_schedule(demands, policy):
    from repro.os.scheduler import ThreadDemand, get_policy
    config = SchedulerConfig(num_cores=1, quantum=1_000,
                             context_switch_cycles=0)
    named = [ThreadDemand(f"t{i}", d, weight=w, pressure=p)
             for i, (d, w, p) in enumerate(demands)]
    plan = get_policy(policy).plan(named, config)
    # No overlap on the single core, and demand covered exactly.
    previous_end = 0
    scheduled = {d.name: 0 for d in named}
    for ts in plan:
        assert ts.start >= previous_end
        assert ts.cycles > 0
        previous_end = ts.end
        scheduled[ts.thread] += ts.cycles
    assert scheduled == {d.name: d.demand_cycles for d in named}
    # Deterministic: planning again yields the identical timeline.
    assert plan == get_policy(policy).plan(named, config)


def test_every_policy_handles_an_empty_demand_list():
    from repro.os.scheduler import get_policy
    config = SchedulerConfig()
    for name in ("round-robin", "weighted-fair", "fault-aware"):
        assert get_policy(name).plan([], config) == []
        assert get_policy(name).schedule([], config) == {}


# ---------------------------------------------------------------------------
# Adaptive (online feedback) policies — unit level
# ---------------------------------------------------------------------------
def _epoch(samples, base_quantum=1000, duration=100_000, epoch=0):
    """Synthesize an EpochStats from (name, misses, run_cycles[, host])."""
    from repro.os.telemetry import EpochStats, ProcessEpoch
    processes = []
    for index, sample in enumerate(samples):
        name, misses, run_cycles = sample[:3]
        host = sample[3] if len(sample) > 3 else 0
        processes.append(ProcessEpoch(
            process=name, asid=index + 1, quantum=base_quantum,
            run_cycles=run_cycles, ops_executed=10, remaining_ops=10,
            tlb_misses=misses, host_tlb_refills=host))
    return EpochStats(epoch=epoch, start_cycle=0, end_cycle=duration,
                      base_quantum=base_quantum, processes=tuple(processes))


def test_adaptive_fault_observe_shrinks_high_miss_rate_quanta():
    from repro.os.scheduler import AdaptiveFaultPolicy
    policy = AdaptiveFaultPolicy()
    quanta = policy.observe(_epoch([("calm", 10, 50_000),
                                    ("thrash", 500, 50_000)]))
    assert quanta["thrash"] < 1000 < quanta["calm"]
    # Rates are smoothed: a thrash phase ending lifts its quantum back.
    recovered = policy.observe(_epoch([("calm", 10, 50_000),
                                       ("thrash", 0, 50_000)], epoch=1))
    assert recovered["thrash"] > quanta["thrash"]


def test_miss_fair_observe_equalises_misses_per_quantum():
    from repro.os.scheduler import MissFairPolicy
    policy = MissFairPolicy()
    quanta = policy.observe(_epoch([("dense", 400, 50_000),
                                    ("sparse", 100, 50_000)]))
    # 4x the miss density -> roughly a quarter of the quantum.
    assert quanta["dense"] < quanta["sparse"]
    assert policy.observe(_epoch([("a", 0, 1000), ("b", 0, 1000)])) is None


def test_host_aware_observe_deprioritises_only_while_host_is_hot():
    from repro.os.scheduler import HostAwarePolicy
    policy = HostAwarePolicy()
    quiet = policy.observe(_epoch([("a", 10, 1000, 0), ("b", 10, 1000, 0)]))
    assert quiet == {"a": 1000, "b": 1000}
    hot = policy.observe(_epoch([("faulty", 10, 1000, 90),
                                 ("clean", 10, 1000, 10)]))
    assert hot["faulty"] < hot["clean"] <= 1000


def test_adaptive_quanta_are_clamped_to_sane_bounds():
    from repro.os.scheduler import AdaptiveSchedulingPolicy
    policy = AdaptiveSchedulingPolicy()
    assert policy.clamp(1000, 0) == 1000 // 8
    assert policy.clamp(1000, 1e12) == 1000 * 4
    assert policy.clamp(1000, 1234.4) == 1234


def test_static_policies_ignore_feedback():
    from repro.os.scheduler import get_policy
    for name in ("round-robin", "weighted-fair", "fault-aware"):
        policy = get_policy(name)
        assert policy.adaptive is False
        assert policy.observe(_epoch([("a", 5, 1000)])) is None


# ---------------------------------------------------------------------------
# Regression: degenerate demand lists cannot blow up quanta computation
# ---------------------------------------------------------------------------
def test_mean_based_policies_guard_the_empty_demand_list_directly():
    from repro.os.scheduler import get_policy
    config = SchedulerConfig()
    for name in ("weighted-fair", "fault-aware"):
        assert get_policy(name).quanta([], config) == {}


def test_thread_demand_rejects_non_finite_weight_and_pressure():
    from repro.os.scheduler import ThreadDemand
    with pytest.raises(ValueError):
        ThreadDemand("t", 1, weight=float("inf"))
    with pytest.raises(ValueError):
        ThreadDemand("t", 1, pressure=float("inf"))
    with pytest.raises(ValueError):
        ThreadDemand("t", 1, pressure=float("nan"))


def test_adaptive_policies_ignore_finished_processes_in_their_means():
    from repro.os.scheduler import AdaptiveFaultPolicy, MissFairPolicy
    from repro.os.telemetry import EpochStats, ProcessEpoch

    survivor = ProcessEpoch(process="alive", asid=1, quantum=1000,
                            run_cycles=50_000, ops_executed=10,
                            remaining_ops=10, tlb_misses=500)
    finished = ProcessEpoch(process="done", asid=2, quantum=0,
                            run_cycles=0, ops_executed=0,
                            remaining_ops=0, tlb_misses=0)
    epoch = EpochStats(epoch=3, start_cycle=0, end_cycle=50_000,
                       base_quantum=1000,
                       processes=(survivor, finished))
    # With itself as the only competitor the survivor's rate *is* the mean:
    # its quantum must stay at base, not be dragged to the clamp floor by a
    # phantom zero-rate neighbour.
    quanta = AdaptiveFaultPolicy().observe(epoch)
    assert quanta == {"alive": 1000}
    quanta = MissFairPolicy().observe(epoch)
    assert quanta == {"alive": 1000}
    # An epoch with nobody left to schedule yields no replanning at all.
    over = EpochStats(epoch=4, start_cycle=0, end_cycle=100,
                      base_quantum=1000, processes=(finished,))
    assert AdaptiveFaultPolicy().observe(over) is None
