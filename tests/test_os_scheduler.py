"""Unit tests for the analytic round-robin software-thread scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.os.scheduler import RoundRobinScheduler, SchedulerConfig


def test_single_thread_single_core_runs_back_to_back():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=1,
                                                    quantum=1000,
                                                    context_switch_cycles=0))
    result = scheduler.run([("t0", 2500)])
    assert result["t0"].finish_time == 2500
    assert result["t0"].context_switches == 2   # two quantum expirations


def test_two_threads_two_cores_run_in_parallel():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=2, quantum=10_000,
                                                    context_switch_cycles=0))
    makespan = scheduler.makespan([("a", 5000), ("b", 5000)])
    assert makespan == 5000


def test_two_threads_one_core_serialise():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=10_000,
                                                    context_switch_cycles=0))
    makespan = scheduler.makespan([("a", 5000), ("b", 5000)])
    assert makespan == 10_000


def test_context_switch_overhead_increases_makespan():
    no_cs = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=100,
                                                context_switch_cycles=0))
    with_cs = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=100,
                                                  context_switch_cycles=50))
    demands = [("a", 1000)]
    assert with_cs.makespan(demands) > no_cs.makespan(demands)


def test_zero_demand_thread_finishes_at_time_zero():
    scheduler = RoundRobinScheduler()
    result = scheduler.run([("idle", 0), ("busy", 100)])
    assert result["idle"].finish_time == 0
    assert result["busy"].finish_time is not None


def test_empty_demand_list():
    scheduler = RoundRobinScheduler()
    assert scheduler.run([]) == {}
    assert scheduler.makespan([]) == 0


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        SchedulerConfig(num_cores=0)
    with pytest.raises(ValueError):
        SchedulerConfig(quantum=0)
    with pytest.raises(ValueError):
        SchedulerConfig(context_switch_cycles=-1)


def test_negative_demand_rejected():
    scheduler = RoundRobinScheduler()
    with pytest.raises(ValueError):
        scheduler.run([("bad", -1)])


@settings(max_examples=40, deadline=None)
@given(demands=st.lists(st.integers(min_value=0, max_value=100_000),
                        min_size=1, max_size=8),
       cores=st.integers(min_value=1, max_value=4))
def test_property_makespan_bounds(demands, cores):
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=cores,
                                                    quantum=10_000,
                                                    context_switch_cycles=0))
    named = [(f"t{i}", d) for i, d in enumerate(demands)]
    makespan = scheduler.makespan(named)
    total = sum(demands)
    longest = max(demands)
    assert makespan >= longest                  # cannot beat the longest thread
    assert makespan >= (total + cores - 1) // cores - 1  # work conservation
    assert makespan <= total                    # never worse than fully serial
