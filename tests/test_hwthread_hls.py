"""Unit tests for the HLS scheduling model."""

import pytest

from repro.hwthread.hls import (
    DEFAULT_SCHEDULES,
    KernelSchedule,
    OperatorBudget,
    scale_schedule,
    schedule_for,
)
from repro.hwthread.kernels import KERNEL_INFO


def test_cycles_for_items_pipelined_formula():
    schedule = KernelSchedule("k", initiation_interval=2, pipeline_depth=10,
                              unroll=1)
    assert schedule.cycles_for_items(0) == 0
    assert schedule.cycles_for_items(1) == 10
    assert schedule.cycles_for_items(5) == 10 + 4 * 2


def test_unroll_divides_iterations():
    schedule = KernelSchedule("k", initiation_interval=1, pipeline_depth=4,
                              unroll=4)
    assert schedule.cycles_for_items(16) == 4 + 3
    assert schedule.cycles_for_items(17) == 4 + 4


def test_throughput_and_intensity():
    schedule = KernelSchedule("k", initiation_interval=2, pipeline_depth=4,
                              unroll=4, ops_per_item=3)
    assert schedule.throughput_items_per_cycle() == pytest.approx(2.0)
    assert schedule.compute_intensity(12) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        schedule.compute_intensity(0)


def test_invalid_schedule_rejected():
    with pytest.raises(ValueError):
        KernelSchedule("k", initiation_interval=0)
    with pytest.raises(ValueError):
        KernelSchedule("k", pipeline_depth=0)
    with pytest.raises(ValueError):
        KernelSchedule("k", unroll=0)
    with pytest.raises(ValueError):
        KernelSchedule("k", ops_per_item=-1)


def test_every_library_kernel_has_a_schedule():
    for name in KERNEL_INFO:
        schedule = schedule_for(name)
        assert schedule.name == name
        assert schedule.cycles_for_items(100) > 0


def test_schedule_for_unknown_kernel_raises():
    with pytest.raises(KeyError):
        schedule_for("fft")


def test_scale_schedule_increases_throughput_and_area():
    base = DEFAULT_SCHEDULES["vecadd"]
    scaled = scale_schedule(base, unroll=base.unroll * 4)
    assert scaled.throughput_items_per_cycle() > base.throughput_items_per_cycle()
    assert scaled.operators.adders >= base.operators.adders
    assert scaled.cycles_for_items(4096) < base.cycles_for_items(4096)
    assert scaled.pipeline_depth >= base.pipeline_depth


def test_scale_schedule_identity():
    base = DEFAULT_SCHEDULES["saxpy"]
    same = scale_schedule(base, unroll=base.unroll)
    assert same.cycles_for_items(1000) == base.cycles_for_items(1000)


def test_scale_schedule_rejects_bad_unroll():
    with pytest.raises(ValueError):
        scale_schedule(DEFAULT_SCHEDULES["vecadd"], unroll=0)


def test_operator_budget_defaults_zero():
    budget = OperatorBudget()
    assert budget.adders == 0 and budget.bram_words == 0
