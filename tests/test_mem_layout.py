"""Unit tests for the physical memory map and alignment helpers."""

import pytest

from repro.mem.layout import PhysicalMemoryMap, Region, align_down, align_up


def test_region_bounds_and_contains():
    region = Region("r", 0x1000, 0x1000)
    assert region.end == 0x2000
    assert region.contains(0x1000)
    assert region.contains(0x1FFF)
    assert not region.contains(0x2000)
    assert region.contains(0x1800, size=0x800)
    assert not region.contains(0x1800, size=0x801)


def test_region_overlap_detection():
    a = Region("a", 0, 100)
    b = Region("b", 50, 100)
    c = Region("c", 100, 10)
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)


def test_invalid_region_rejected():
    with pytest.raises(ValueError):
        Region("bad", -1, 10)
    with pytest.raises(ValueError):
        Region("bad", 0, 0)


def test_memory_map_usable_excludes_reserved():
    memory_map = PhysicalMemoryMap(dram_size=64 * 1024 * 1024,
                                   reserved_size=4 * 1024 * 1024)
    usable = memory_map.usable
    assert usable.base == memory_map.reserved.end
    assert usable.size == 60 * 1024 * 1024


def test_memory_map_validate_physical():
    memory_map = PhysicalMemoryMap(dram_size=16 * 1024 * 1024,
                                   reserved_size=1024 * 1024)
    assert memory_map.validate_physical(0)
    assert memory_map.validate_physical(16 * 1024 * 1024 - 4, 4)
    assert not memory_map.validate_physical(16 * 1024 * 1024, 4)


def test_reserved_must_be_smaller_than_dram():
    with pytest.raises(ValueError):
        PhysicalMemoryMap(dram_size=1024, reserved_size=2048)


def test_add_region_rejects_overlap():
    memory_map = PhysicalMemoryMap()
    memory_map.add_region("mmio", 0x4000_0000, 0x1000)
    with pytest.raises(ValueError):
        memory_map.add_region("mmio2", 0x4000_0800, 0x1000)


def test_region_lookup_by_name():
    memory_map = PhysicalMemoryMap()
    assert memory_map.region("dram").name == "dram"
    assert any(r.name == "os_reserved" for r in memory_map.regions())


def test_align_helpers():
    assert align_up(0x1001, 0x1000) == 0x2000
    assert align_up(0x1000, 0x1000) == 0x1000
    assert align_down(0x1FFF, 0x1000) == 0x1000
    assert align_down(0x1000, 0x1000) == 0x1000


def test_align_rejects_non_power_of_two():
    with pytest.raises(ValueError):
        align_up(10, 3)
    with pytest.raises(ValueError):
        align_down(10, 0)
