"""Cross-cutting end-to-end integration tests.

These tests exercise the whole stack (synthesis + OS + VM + memory + threads)
and assert system-level invariants that should hold regardless of tuning:
conservation of traffic, ordering between execution models, and consistency
between statistics reported by different components.
"""


from repro.core.platform import Platform, PlatformConfig
from repro.core.spec import SystemSpec, ThreadSpec
from repro.core.synthesis import SystemSynthesizer
from repro.eval.harness import HarnessConfig, run_ideal, run_svm
from repro.workloads import workload


def run_system(kernel="vecadd", scale="tiny", tlb_entries=16, residency=1.0,
               num_threads=1, shared_walker=False):
    platform = Platform(PlatformConfig())
    bounds = []
    threads = []
    for i in range(num_threads):
        spec = workload(kernel, scale=scale, residency=residency)
        bounds.append(spec.bind(platform.space))
        threads.append(ThreadSpec(name=f"hwt{i}", kernel=kernel,
                                  tlb_entries=tlb_entries))
    system_spec = SystemSpec(name="it", threads=threads,
                             shared_walker=shared_walker)
    system = SystemSynthesizer().synthesize(system_spec, platform=platform)
    kernels = {f"hwt{i}": bounds[i].make_kernel() for i in range(num_threads)}
    result = system.run(kernels)
    return platform, system, bounds, result


def test_traffic_conservation_thread_vs_dram():
    platform, system, bounds, result = run_system("vecadd")
    stats = result.stats
    thread_bytes = stats["hwt0.mem_bytes"]
    dram_bytes = stats["dram.bytes_read"] + stats["dram.bytes_written"]
    assert thread_bytes == bounds[0].touched_bytes
    # DRAM sees the thread's data traffic plus page-table walk reads.
    assert dram_bytes >= thread_bytes
    walker_reads = stats.get("ptw.hwt0.levels_fetched", 0) * 4
    assert dram_bytes <= thread_bytes + walker_reads + 4096


def test_tlb_miss_count_matches_walker_requests():
    platform, system, bounds, result = run_system("matmul")
    stats = result.stats
    misses = stats["mmu.hwt0.tlb_misses"]
    walks = stats["ptw.hwt0.walks_requested"]
    assert walks == misses


def test_translations_equal_memory_transactions():
    platform, system, bounds, result = run_system("vecadd")
    stats = result.stats
    assert stats["mmu.hwt0.translations"] == stats["hwt0.memif.transactions"]


def test_faults_resolved_match_mmu_fault_count():
    platform, system, bounds, result = run_system("vecadd", residency=0.5)
    stats = result.stats
    mmu_faults = stats["mmu.hwt0.faults"]
    resolved = stats[f"os.kernel.faults.{platform.process_name}.faults_resolved"]
    assert mmu_faults > 0
    assert resolved == mmu_faults
    assert result.ok


def test_bigger_tlb_never_hurts_hit_rate():
    small = run_svm(workload("histogram", scale="tiny"),
                    HarnessConfig(tlb_entries=4))
    large = run_svm(workload("histogram", scale="tiny"),
                    HarnessConfig(tlb_entries=128))
    assert large.tlb_hit_rate >= small.tlb_hit_rate
    assert large.fabric_cycles <= small.fabric_cycles


def test_svm_fabric_time_bounded_below_by_ideal_for_all_patterns():
    for kernel in ("vecadd", "matmul", "linked_list", "histogram"):
        spec = workload(kernel, scale="tiny")
        config = HarnessConfig(tlb_entries=32)
        svm = run_svm(spec, config)
        ideal = run_ideal(spec, config)
        assert svm.fabric_cycles >= ideal, kernel


def test_multithread_shares_bus_and_stays_correct():
    _, _, bounds, single = run_system("saxpy", num_threads=1)
    _, _, _, quad = run_system("saxpy", num_threads=4)
    assert quad.ok
    assert len(quad.per_thread_fabric_cycles) == 4
    # Aggregate work is 4x; contention means each thread is slower than alone,
    # but the system finishes well before 4x the single-thread time.
    assert quad.total_cycles < 4 * single.total_cycles
    slowest = max(quad.per_thread_fabric_cycles.values())
    assert slowest >= max(single.per_thread_fabric_cycles.values())


def test_shared_walker_reduces_resources_but_not_correctness():
    _, private_system, _, private = run_system("random_access", num_threads=2,
                                               shared_walker=False)
    _, shared_system, _, shared = run_system("random_access", num_threads=2,
                                             shared_walker=True)
    assert shared.ok and private.ok
    assert (shared_system.resource_estimate().luts
            < private_system.resource_estimate().luts)
    assert shared.total_cycles >= private.total_cycles * 0.9


def test_demand_paging_and_pinning_equivalent_final_state():
    platform, system, bounds, result = run_system("vecadd", residency=0.0)
    assert result.ok
    area = bounds[0].areas[0]
    # After the run every touched page is resident.
    assert platform.space.resident_pages(area) == area.size // platform.page_size


def test_aborted_thread_reported_not_hung():
    platform = Platform(PlatformConfig())
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    spec = SystemSpec(name="bad", threads=[ThreadSpec(name="hwt0",
                                                      kernel="vecadd")])
    system = SystemSynthesizer().synthesize(spec, platform=platform)

    def wild_kernel():
        from repro.sim.process import Access
        yield Access(addr=0xDEAD_0000, size=4)   # outside every mapping

    result = system.run({"hwt0": wild_kernel()})
    assert not result.ok
    assert result.aborted_threads == ["hwt0"]


def test_stats_snapshot_contains_all_major_components():
    _, _, _, result = run_system("vecadd")
    keys = result.stats.keys()
    for prefix in ("dram.", "bus.", "mmu.hwt0.", "ptw.hwt0.", "hwt0.",
                   "os.kernel"):
        assert any(k.startswith(prefix) for k in keys), prefix
