"""Broker conformance: every backend must honour the same contract.

The same lease/retry/idempotency scenarios as the SQLite broker tests, run
twice — once against :class:`SQLiteBroker` directly, once through the full
network stack (``HTTPBroker → BrokerServer → SQLiteBroker``).  The server
wraps a SQLite broker driven by the shared :class:`FakeClock`, so lease
expiry and backoff remain deterministic even over HTTP: the clock is
advanced in-process and both transports observe identical state machines.
"""

import pickle

import pytest

from repro.dist import (Broker, BrokerServer, HTTPBroker, SQLiteBroker,
                        Worker, WorkItem)


class FakeClock:
    """Deterministic time source: leases/backoff advance only on demand."""

    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom on {x}")


def _item(key, fn=square, arg=2, meta=None):
    return WorkItem(key=key, payload=pickle.dumps((fn, arg)), meta=meta)


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture(params=["sqlite", "http"])
def broker(request, tmp_path, clock):
    backend = SQLiteBroker(tmp_path / "broker.db", lease_seconds=10.0,
                           max_attempts=3, backoff_seconds=1.0, clock=clock)
    if request.param == "sqlite":
        yield backend
        backend.close()
        return
    server = BrokerServer(backend).start()
    try:
        yield HTTPBroker(server.url, retries=2, backoff_seconds=0.01)
    finally:
        server.close()
        backend.close()


def test_satisfies_broker_protocol(broker):
    assert isinstance(broker, Broker)


# ---------------------------------------------------------------------------
# Enqueue / claim / complete
# ---------------------------------------------------------------------------
def test_claim_complete_roundtrip(broker):
    ticket = broker.create_sweep([_item("k0", arg=3), _item("k1", arg=4)],
                                 label="t")
    assert ticket.total == 2 and ticket.already_done == 0

    claim = broker.claim("w1")
    assert claim.key == "k0" and claim.attempts == 1
    fn, arg = pickle.loads(claim.payload)
    assert broker.complete(claim.key, fn(arg), worker="w1") is True

    status = broker.status(ticket.sweep_id)
    assert status["done"] == 1 and status["pending"] == 1
    assert not status["finished"]

    claim2 = broker.claim("w1")
    broker.complete(claim2.key, 16, worker="w1")
    status = broker.status(ticket.sweep_id)
    assert status["finished"] and status["done_fraction"] == 1.0

    results = broker.fetch_results(ticket.sweep_id)
    assert [(r.position, r.state, r.value) for r in results] == [
        (0, "done", 9), (1, "done", 16)]


def test_claims_are_exclusive(broker):
    broker.create_sweep([_item("k0")])
    assert broker.claim("w1") is not None
    assert broker.claim("w2") is None           # leased, not expired


def test_unknown_sweep_raises_keyerror(broker):
    with pytest.raises(KeyError):
        broker.status("nope")
    # The position/result queries are quietly empty for unknown sweeps —
    # same contract both sides of the wire.
    assert broker.fetch_results("nope") == []
    assert broker.finished_positions("nope") == {}


def test_meta_roundtrips(broker):
    ticket = broker.create_sweep(
        [_item("k0", meta={"position": 0, "coords": {"x": 1}})])
    claim = broker.claim("w1")
    broker.complete(claim.key, 4)
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.meta == {"position": 0, "coords": {"x": 1}}


def test_duplicate_keys_within_a_sweep_execute_once(broker):
    ticket = broker.create_sweep([_item("k0"), _item("k0"), _item("k1")])
    claims = [broker.claim("w1"), broker.claim("w2")]
    assert [c.key for c in claims] == ["k0", "k1"]
    assert broker.claim("w3") is None
    for claim in claims:
        broker.complete(claim.key, 7)
    status = broker.status(ticket.sweep_id)
    assert status["done"] == 3 and status["finished"]


def test_completion_is_idempotent_first_result_wins(broker):
    broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    assert broker.complete(claim.key, 111, worker="w1") is True
    assert broker.complete(claim.key, 222, worker="w2") is False
    (result,) = broker.fetch_results(claim.sweep_id)
    assert result.value == 111                   # the duplicate was dropped


def test_completion_resolves_same_key_across_sweeps(broker):
    a = broker.create_sweep([_item("k0")])
    b = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.complete(claim.key, 5)
    assert broker.status(a.sweep_id)["finished"]
    assert broker.status(b.sweep_id)["finished"]


# ---------------------------------------------------------------------------
# Leases, retries, backoff — the phantom-crash family
# ---------------------------------------------------------------------------
def test_expired_lease_is_reclaimed(broker, clock):
    broker.create_sweep([_item("k0")])
    first = broker.claim("dead-worker")
    assert first.attempts == 1
    assert broker.claim("w2") is None            # lease still live
    clock.advance(11.0)
    second = broker.claim("w2")
    assert second is not None and second.key == "k0"
    assert second.attempts == 2


def test_phantom_crashes_exhaust_max_attempts(broker, clock):
    ticket = broker.create_sweep([_item("k0")])
    for _ in range(3):                           # max_attempts crashes
        assert broker.claim("crashy") is not None
        clock.advance(11.0)
    assert broker.claim("w2") is None
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed"
    assert "lease expired" in result.error
    assert broker.retries(ticket.sweep_id) == 2


def test_heartbeat_extends_lease(broker, clock):
    broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    clock.advance(8.0)
    assert broker.heartbeat(claim) is True
    clock.advance(8.0)                           # past original expiry
    assert broker.claim("w2") is None            # still leased thanks to beat


def test_heartbeat_reports_lost_lease(broker, clock):
    broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    clock.advance(11.0)
    assert broker.claim("w2") is not None        # re-leased to someone else
    assert broker.heartbeat(claim) is False


def test_transient_failure_retries_with_exponential_backoff(broker, clock):
    ticket = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.fail(claim, "flaky", transient=True)
    assert broker.claim("w1") is None            # backoff: 1.0s not elapsed
    clock.advance(1.5)
    claim = broker.claim("w1")
    assert claim.attempts == 2
    broker.fail(claim, "flaky again", transient=True)
    clock.advance(1.5)
    assert broker.claim("w1") is None            # second backoff doubled to 2s
    clock.advance(1.0)
    claim = broker.claim("w1")
    assert claim.attempts == 3
    broker.fail(claim, "flaky forever", transient=True)
    (result,) = broker.fetch_results(ticket.sweep_id)   # retries exhausted
    assert result.state == "failed" and "flaky forever" in result.error


def test_permanent_failure_parks_immediately(broker):
    ticket = broker.create_sweep([_item("k0")])
    claim = broker.claim("w1")
    broker.fail(claim, "ValueError: boom", transient=False)
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed" and "boom" in result.error
    assert broker.claim("w2") is None


def test_stale_failure_cannot_clobber_a_reclaim(broker, clock):
    """A crashed-then-revived worker's late fail() is a no-op."""
    ticket = broker.create_sweep([_item("k0")])
    stale = broker.claim("w1")
    clock.advance(11.0)
    fresh = broker.claim("w2")
    assert fresh.attempts == 2
    broker.fail(stale, "late report", transient=False)   # guarded by attempts
    assert broker.status(ticket.sweep_id)["leased"] == 1
    broker.complete(fresh.key, 42)
    assert broker.status(ticket.sweep_id)["finished"]


def test_cancel_stops_scheduling(broker):
    ticket = broker.create_sweep([_item("k0"), _item("k1")])
    running = broker.claim("w1")
    assert broker.cancel(ticket.sweep_id) == 1   # the still-pending job
    assert broker.claim("w2") is None
    status = broker.status(ticket.sweep_id)
    assert status["sweep_cancelled"] and status["cancelled"] == 1
    # The leased job may still finish; its result stays reusable.
    assert broker.complete(running.key, 1) is True


# ---------------------------------------------------------------------------
# Lazy value materialization
# ---------------------------------------------------------------------------
def test_fetch_results_without_values_is_lazy(broker):
    ticket = broker.create_sweep([_item("k0", arg=3)])
    claim = broker.claim("w1")
    broker.complete(claim.key, 9)
    (lazy,) = broker.fetch_results(ticket.sweep_id, values=False)
    assert lazy.state == "done" and lazy.value is None
    (eager,) = broker.fetch_results(ticket.sweep_id)
    assert eager.value == 9


def test_finished_positions_tracks_terminal_states(broker):
    ticket = broker.create_sweep([_item("k0"), _item("k1")])
    claim = broker.claim("w1")
    broker.complete(claim.key, 4)
    assert broker.finished_positions(ticket.sweep_id) == {0: "done"}
    claim = broker.claim("w1")
    broker.fail(claim, "nope", transient=False)
    assert broker.finished_positions(ticket.sweep_id) == {
        0: "done", 1: "failed"}


# ---------------------------------------------------------------------------
# Worker loop over both transports
# ---------------------------------------------------------------------------
def test_worker_drains_queue(broker):
    ticket = broker.create_sweep([_item("k0", arg=5), _item("k1", arg=6)])
    worker = Worker(broker, worker_id="w1")
    assert worker.run_until_idle() == 2
    assert [r.value for r in broker.fetch_results(ticket.sweep_id)] == [
        25, 36]


def test_worker_classifies_raising_fn_as_permanent(broker):
    ticket = broker.create_sweep([_item("k0", fn=boom, arg=1)])
    worker = Worker(broker, worker_id="w1")
    assert worker.run_until_idle() == 1
    assert worker.jobs_run == 0 and worker.failures == 1
    (result,) = broker.fetch_results(ticket.sweep_id)
    assert result.state == "failed"
    assert "ValueError" in result.error and "boom" in result.error
