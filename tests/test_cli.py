"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command_prints_experiments_and_kernels(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out
    assert "vecadd" in out


def test_run_command_renders_an_experiment(capsys):
    assert main(["run", "table1", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "luts" in out


def test_run_tlb_sweep_renders_series(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "residency" in out


def test_compare_command_reports_speedups(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--tlb-entries", "16"]) == 0
    out = capsys.readouterr().out
    assert "speedup_sw" in out
    assert "vecadd" in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "table99"])


def test_parser_rejects_unknown_kernel():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["compare", "fft"])


def test_run_accepts_jobs_and_no_cache_flags(capsys):
    assert main(["run", "fig5", "--scale", "tiny", "--jobs", "2",
                 "--no-cache"]) == 0
    out, err = capsys.readouterr()
    assert "tlb_entries" in out
    assert "sweep timings" in err          # runner summary goes to stderr


def test_run_with_cache_reports_summary(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    _, err = capsys.readouterr()
    assert "cache_hits" in err


def test_compare_accepts_jobs_flag(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny", "--jobs", "2"]) == 0
    out, _ = capsys.readouterr()
    assert "speedup_sw" in out


def test_parser_defaults_for_exec_flags():
    args = build_parser().parse_args(["run", "fig10"])
    assert args.jobs == 1 and args.no_cache is False
