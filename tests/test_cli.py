"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command_prints_experiments_and_kernels(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out
    assert "vecadd" in out


def test_run_command_renders_an_experiment(capsys):
    assert main(["run", "table1", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "luts" in out


def test_run_tlb_sweep_renders_series(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "residency" in out


def test_compare_command_reports_speedups(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--tlb-entries", "16"]) == 0
    out = capsys.readouterr().out
    assert "speedup_sw" in out
    assert "vecadd" in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "table99"])


def test_parser_rejects_unknown_kernel():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["compare", "fft"])
