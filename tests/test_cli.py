"""Tests for the command-line interface."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Keep CLI cache writes out of the repository working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_RESULTS_DB", raising=False)


def test_list_command_prints_experiments_kernels_and_models(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out
    assert "vecadd" in out
    assert "svm" in out and "copydma" in out
    # Titles from the experiment metadata, not bare names.
    assert "Table 3" in out


def test_models_command_lists_registered_models(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("svm", "ideal", "copydma", "software"):
        assert name in out
    assert "hardware thread" in out          # docstring summaries included


def test_run_command_renders_an_experiment(capsys):
    assert main(["run", "table1", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "luts" in out


def test_run_tlb_sweep_renders_series(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "residency" in out


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_run_smoke_every_registered_experiment(experiment, capsys):
    """Every experiment in the registry runs end-to-end at tiny scale."""
    assert main(["run", experiment, "--scale", "tiny"]) == 0
    assert capsys.readouterr().out.strip()


def test_run_json_output_is_parseable(capsys):
    assert main(["run", "fig5_replacement", "--scale", "tiny", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert set(data) >= {"tlb_entries", "lru", "fifo", "random"}


def test_run_csv_output_table(capsys):
    assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    rows = list(csv.DictReader(io.StringIO(out)))
    assert rows and "kernel" in rows[0] and "luts" in rows[0]


def test_run_csv_output_nested_series(capsys):
    assert main(["run", "fig8", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    rows = list(csv.DictReader(io.StringIO(out)))
    assert rows and "group" in rows[0] and "residency" in rows[0]


def test_compare_command_reports_speedups(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--tlb-entries", "16"]) == 0
    out = capsys.readouterr().out
    assert "speedup_sw" in out
    assert "vecadd" in out


def test_compare_model_subset_and_json(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--models", "svm,software", "--json"]) == 0
    out = capsys.readouterr().out
    rows = json.loads(out)
    assert rows[0]["workload"] == "vecadd"
    assert "speedup_sw" in rows[0] and "copy_dma" not in rows[0]


def test_compare_rejects_unknown_model(capsys):
    assert main(["compare", "vecadd", "--models", "svm,warpdrive"]) == 2
    err = capsys.readouterr().err
    assert "warpdrive" in err


def test_compare_tolerates_repeated_models(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--models", "svm,svm,software"]) == 0
    out = capsys.readouterr().out
    assert "speedup_sw" in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "table99"])


def test_parser_rejects_unknown_kernel():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["compare", "fft"])


def test_run_accepts_jobs_and_no_cache_flags(capsys):
    assert main(["run", "fig5", "--scale", "tiny", "--jobs", "2",
                 "--no-cache"]) == 0
    out, err = capsys.readouterr()
    assert "tlb_entries" in out
    assert "sweep timings" in err          # runner summary goes to stderr


def test_run_with_cache_reports_summary(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    _, err = capsys.readouterr()
    assert "cache_hits" in err


def test_cache_dir_persists_across_invocations(tmp_path, capsys):
    cache_dir = tmp_path / "memo"
    argv = ["run", "fig5_replacement", "--scale", "tiny",
            "--cache-dir", str(cache_dir)]
    assert main(argv) == 0
    first_out, _ = capsys.readouterr()
    assert list(cache_dir.rglob("*.pkl")), "results were persisted to disk"

    # A fresh process would re-read from disk; simulate by clearing the
    # in-memory layer of the process-global cache for that directory.
    from repro.exec import default_cache
    cache = default_cache(str(cache_dir))
    cache._data.clear()
    executed_before = cache.hits
    assert main(argv) == 0
    second_out, err = capsys.readouterr()
    assert second_out == first_out
    assert cache.hits > executed_before    # served from the disk layer


def test_refresh_cache_works_from_non_sweepable_experiments(tmp_path, capsys):
    cache_dir = tmp_path / "memo"
    assert main(["run", "fig8_pinning", "--scale", "tiny",
                 "--cache-dir", str(cache_dir)]) == 0
    assert list(cache_dir.rglob("*.pkl"))
    capsys.readouterr()
    # table2 runs no sweep, but its cache flags must still take effect.
    assert main(["run", "table2", "--scale", "tiny",
                 "--cache-dir", str(cache_dir), "--refresh-cache"]) == 0
    assert not list(cache_dir.rglob("*.pkl"))


def test_refresh_cache_reexecutes_points(tmp_path, capsys):
    cache_dir = tmp_path / "memo"
    argv = ["run", "fig8_pinning", "--scale", "tiny",
            "--cache-dir", str(cache_dir)]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--refresh-cache"]) == 0
    _, err = capsys.readouterr()
    assert "points_executed=3" in err      # cleared, so everything re-ran


def test_compare_accepts_jobs_flag(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny", "--jobs", "2"]) == 0
    out, _ = capsys.readouterr()
    assert "speedup_sw" in out


def test_parser_defaults_for_exec_flags(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_RESULTS_DB", raising=False)
    args = build_parser().parse_args(["run", "fig10"])
    assert args.jobs == 1 and args.no_cache is False
    assert args.cache_dir == ".repro-cache"
    assert args.json is False and args.csv is False
    assert args.results_db is None


def test_run_stats_emits_json_summary(capsys):
    assert main(["run", "fig5", "--scale", "tiny", "--json", "--stats"]) == 0
    out, err = capsys.readouterr()
    json.loads(out)                              # result unchanged by --stats
    stats = json.loads(err)
    assert stats["jobs"] == 1
    assert "fig5_tlb_sweep" in stats["timings_s"]
    assert stats["stats"]["points_submitted"] == stats["stats"][
        "points_executed"] + stats["stats"]["cache_hits"]
    assert stats["stats"]["failed_jobs"] == 0
    assert "cache" in stats


def test_compare_stats_emits_json_summary(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny", "--stats"]) == 0
    _, err = capsys.readouterr()
    stats = json.loads(err)
    assert stats["total_wall_s"] >= 0
    assert "retries" in stats["stats"]


# ---------------------------------------------------------------------------
# Results store round-trip and `repro query`
# ---------------------------------------------------------------------------
def _seeded_store(tmp_path):
    """A deterministic two-sha store for query golden tests."""
    from repro.models import RunOutcome
    from repro.store import ResultsStore

    path = tmp_path / "seed.db"
    ticks = iter(range(100, 200))
    store = ResultsStore(path, clock=lambda: float(next(ticks)) * 86400,
                         sha="aaaaaaaaaaaa")
    store.record("k1" * 32,
                 RunOutcome(model="svm", total_cycles=100, fabric_cycles=80,
                            tlb_hit_rate=0.5, tier="replay"),
                 experiment="fig5", coords={"tlb_entries": 8},
                 kernel="vecadd")
    store.record("k2" * 32,
                 RunOutcome(model="copydma", total_cycles=300,
                            fabric_cycles=200),
                 experiment="fig5", coords={"tlb_entries": 16},
                 kernel="matmul")
    store.close()
    later = ResultsStore(path, clock=lambda: float(next(ticks)) * 86400,
                         sha="bbbbbbbbbbbb")
    later.record("k1" * 32,
                 RunOutcome(model="svm", total_cycles=90, fabric_cycles=75,
                            tlb_hit_rate=0.5, tier="replay"),
                 experiment="fig5", coords={"tlb_entries": 8},
                 kernel="vecadd")
    later.close()
    return path


def test_run_results_db_query_round_trip(tmp_path, capsys):
    """Acceptance: every sweep point lands exactly one queryable row with
    bit-identical cycles, and a re-run appends nothing."""
    db = str(tmp_path / "results.db")
    assert main(["run", "fig5", "--scale", "tiny",
                 "--results-db", db, "--json"]) == 0
    series = json.loads(capsys.readouterr().out)
    points = sum(len(v["tlb_entries"]) for v in series.values())

    assert main(["query", "--db", db, "--format", "json"]) == 0
    out, err = capsys.readouterr()
    rows = json.loads(out)
    assert len(rows) == points
    assert f"{points} row(s)" in err
    by_coord = {(r["kernel"], r["tlb_entries"]): r for r in rows}
    for kernel, data in series.items():
        for entries, fabric, hit_rate in zip(data["tlb_entries"],
                                             data["fabric_cycles"],
                                             data["hit_rate"]):
            row = by_coord[(kernel, entries)]
            assert row["fabric_cycles"] == fabric
            assert row["tlb_hit_rate"] == hit_rate
            assert row["experiment"] == "fig5_tlb_sweep"

    # Warm re-run: identical keys and sha, so the ledger is unchanged.
    assert main(["run", "fig5", "--scale", "tiny",
                 "--results-db", db, "--json"]) == 0
    capsys.readouterr()
    assert main(["query", "--db", db, "--format", "json"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == points


def test_query_filters_against_seeded_store(tmp_path, capsys):
    db = str(_seeded_store(tmp_path))

    assert main(["query", "--db", db, "--format", "json"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 3

    assert main(["query", "--db", db, "--model", "copydma",
                 "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert [r["total_cycles"] for r in rows] == [300]

    assert main(["query", "--db", db, "--sha", "bbbbbbbbbbbb",
                 "--format", "json"]) == 0
    assert [r["total_cycles"]
            for r in json.loads(capsys.readouterr().out)] == [90]

    assert main(["query", "--db", db, "--coord", "tlb_entries=8",
                 "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert {r["git_sha"] for r in rows} == {"aaaaaaaaaaaa", "bbbbbbbbbbbb"}

    assert main(["query", "--db", db, "--kernel", "vecadd", "--limit", "1",
                 "--format", "json"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 1

    # Day 101 (the second seeded row) onwards, in UTC days-since-epoch.
    assert main(["query", "--db", db, "--since", "1970-04-12",
                 "--format", "json"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 2


def test_query_output_formats(tmp_path, capsys):
    db = str(_seeded_store(tmp_path))

    assert main(["query", "--db", db,
                 "--columns", "kernel,total_cycles,git_sha"]) == 0
    out = capsys.readouterr().out
    assert "Results:" in out and "vecadd" in out and "total_cycles" in out

    assert main(["query", "--db", db, "--format", "csv",
                 "--columns", "kernel,total_cycles"]) == 0
    rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
    assert rows == [{"kernel": "vecadd", "total_cycles": "100"},
                    {"kernel": "matmul", "total_cycles": "300"},
                    {"kernel": "vecadd", "total_cycles": "90"}]


def test_query_golden_row_shape(tmp_path, capsys):
    """The full query row is pinned: the record schema plus provenance."""
    import repro

    db = str(_seeded_store(tmp_path))
    assert main(["query", "--db", db, "--model", "svm",
                 "--sha", "aaaaaaaaaaaa", "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert rows == [{
        "experiment": "fig5", "tlb_entries": 8, "model": "svm",
        "tier": "replay", "total_cycles": 100, "fabric_cycles": 80,
        "tlb_hit_rate": 0.5, "tlb_misses": 0, "faults": 0,
        "software_overhead_cycles": 0, "marshalling_cycles": 0,
        "walks": 0, "walker_levels": 0, "walker_cycles": 0,
        "miss_stall_cycles": 0, "prefetches_issued": 0, "prefetch_hits": 0,
        "context_switches": 0, "epochs": 0, "kernel": "vecadd",
        "wall_seconds": None, "package_version": repro.__version__,
        "git_sha": "aaaaaaaaaaaa", "created": "1970-04-11T00:00:00Z",
        "key": "k1" * 32,
    }]


def test_query_trend_aggregates_across_shas(tmp_path, capsys):
    db = str(_seeded_store(tmp_path))
    assert main(["query", "--db", db, "--trend", "total_cycles",
                 "--coord", "tlb_entries=8", "--format", "json"]) == 0
    trend = json.loads(capsys.readouterr().out)
    assert [(t["git_sha"], t["runs"], t["total_cycles_mean"])
            for t in trend] == [("aaaaaaaaaaaa", 1, 100.0),
                                ("bbbbbbbbbbbb", 1, 90.0)]


def test_query_error_paths(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_DB", raising=False)
    assert main(["query"]) == 2
    assert "REPRO_RESULTS_DB" in capsys.readouterr().err

    assert main(["query", "--db", str(tmp_path / "absent.db")]) == 2
    assert "does not exist" in capsys.readouterr().err

    db = str(_seeded_store(tmp_path))
    assert main(["query", "--db", db, "--coord", "bogus"]) == 2
    assert "AXIS=VALUE" in capsys.readouterr().err

    assert main(["query", "--db", db, "--since", "not-a-date"]) == 2
    assert "--since" in capsys.readouterr().err


def test_query_rejects_schema_mismatch(tmp_path, capsys):
    import sqlite3

    db = str(_seeded_store(tmp_path))
    with sqlite3.connect(db) as conn:
        conn.execute("UPDATE meta SET value = '999' "
                     "WHERE key = 'schema_version'")
    assert main(["query", "--db", db]) == 2
    assert "schema version" in capsys.readouterr().err


def test_bench_results_db_records_suite_rows(tmp_path, capsys):
    db = str(tmp_path / "bench.db")
    out = str(tmp_path / "bench.json")
    assert main(["bench", "--only", "table3_tiny", "--output", out,
                 "--results-db", db]) == 0
    assert "recorded 1 bench row(s)" in capsys.readouterr().err

    assert main(["query", "--db", db, "--experiment", "bench",
                 "--format", "json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    assert len(rows) == 1
    assert rows[0]["entry"] == "table3_tiny"
    assert rows[0]["scale"] == "tiny"
    assert rows[0]["wall_seconds"] > 0

    # Same commit, same entry: the ledger stays append-once.
    assert main(["bench", "--only", "table3_tiny", "--output", out,
                 "--results-db", db]) == 0
    assert "recorded 0 bench row(s)" in capsys.readouterr().err


def test_compare_table_output_via_shared_renderer(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--tlb-entries", "16", "--csv"]) == 0
    rows = list(csv.DictReader(io.StringIO(capsys.readouterr().out)))
    assert len(rows) == 1 and rows[0]["workload"] == "vecadd"
