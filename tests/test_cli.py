"""Tests for the command-line interface."""

import csv
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.eval.experiments import EXPERIMENTS


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Keep CLI cache writes out of the repository working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))


def test_list_command_prints_experiments_kernels_and_models(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table3" in out
    assert "vecadd" in out
    assert "svm" in out and "copydma" in out
    # Titles from the experiment metadata, not bare names.
    assert "Table 3" in out


def test_models_command_lists_registered_models(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    for name in ("svm", "ideal", "copydma", "software"):
        assert name in out
    assert "hardware thread" in out          # docstring summaries included


def test_run_command_renders_an_experiment(capsys):
    assert main(["run", "table1", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "kernel" in out
    assert "luts" in out


def test_run_tlb_sweep_renders_series(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    out = capsys.readouterr().out
    assert "residency" in out


@pytest.mark.parametrize("experiment", sorted(EXPERIMENTS))
def test_run_smoke_every_registered_experiment(experiment, capsys):
    """Every experiment in the registry runs end-to-end at tiny scale."""
    assert main(["run", experiment, "--scale", "tiny"]) == 0
    assert capsys.readouterr().out.strip()


def test_run_json_output_is_parseable(capsys):
    assert main(["run", "fig5_replacement", "--scale", "tiny", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert set(data) >= {"tlb_entries", "lru", "fifo", "random"}


def test_run_csv_output_table(capsys):
    assert main(["run", "table1", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    rows = list(csv.DictReader(io.StringIO(out)))
    assert rows and "kernel" in rows[0] and "luts" in rows[0]


def test_run_csv_output_nested_series(capsys):
    assert main(["run", "fig8", "--scale", "tiny", "--csv"]) == 0
    out = capsys.readouterr().out
    rows = list(csv.DictReader(io.StringIO(out)))
    assert rows and "group" in rows[0] and "residency" in rows[0]


def test_compare_command_reports_speedups(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--tlb-entries", "16"]) == 0
    out = capsys.readouterr().out
    assert "speedup_sw" in out
    assert "vecadd" in out


def test_compare_model_subset_and_json(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--models", "svm,software", "--json"]) == 0
    out = capsys.readouterr().out
    rows = json.loads(out)
    assert rows[0]["workload"] == "vecadd"
    assert "speedup_sw" in rows[0] and "copy_dma" not in rows[0]


def test_compare_rejects_unknown_model(capsys):
    assert main(["compare", "vecadd", "--models", "svm,warpdrive"]) == 2
    err = capsys.readouterr().err
    assert "warpdrive" in err


def test_compare_tolerates_repeated_models(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny",
                 "--models", "svm,svm,software"]) == 0
    out = capsys.readouterr().out
    assert "speedup_sw" in out


def test_parser_rejects_unknown_experiment():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "table99"])


def test_parser_rejects_unknown_kernel():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["compare", "fft"])


def test_run_accepts_jobs_and_no_cache_flags(capsys):
    assert main(["run", "fig5", "--scale", "tiny", "--jobs", "2",
                 "--no-cache"]) == 0
    out, err = capsys.readouterr()
    assert "tlb_entries" in out
    assert "sweep timings" in err          # runner summary goes to stderr


def test_run_with_cache_reports_summary(capsys):
    assert main(["run", "fig8", "--scale", "tiny"]) == 0
    _, err = capsys.readouterr()
    assert "cache_hits" in err


def test_cache_dir_persists_across_invocations(tmp_path, capsys):
    cache_dir = tmp_path / "memo"
    argv = ["run", "fig5_replacement", "--scale", "tiny",
            "--cache-dir", str(cache_dir)]
    assert main(argv) == 0
    first_out, _ = capsys.readouterr()
    assert list(cache_dir.rglob("*.pkl")), "results were persisted to disk"

    # A fresh process would re-read from disk; simulate by clearing the
    # in-memory layer of the process-global cache for that directory.
    from repro.exec import default_cache
    cache = default_cache(str(cache_dir))
    cache._data.clear()
    executed_before = cache.hits
    assert main(argv) == 0
    second_out, err = capsys.readouterr()
    assert second_out == first_out
    assert cache.hits > executed_before    # served from the disk layer


def test_refresh_cache_works_from_non_sweepable_experiments(tmp_path, capsys):
    cache_dir = tmp_path / "memo"
    assert main(["run", "fig8_pinning", "--scale", "tiny",
                 "--cache-dir", str(cache_dir)]) == 0
    assert list(cache_dir.rglob("*.pkl"))
    capsys.readouterr()
    # table2 runs no sweep, but its cache flags must still take effect.
    assert main(["run", "table2", "--scale", "tiny",
                 "--cache-dir", str(cache_dir), "--refresh-cache"]) == 0
    assert not list(cache_dir.rglob("*.pkl"))


def test_refresh_cache_reexecutes_points(tmp_path, capsys):
    cache_dir = tmp_path / "memo"
    argv = ["run", "fig8_pinning", "--scale", "tiny",
            "--cache-dir", str(cache_dir)]
    assert main(argv) == 0
    capsys.readouterr()
    assert main(argv + ["--refresh-cache"]) == 0
    _, err = capsys.readouterr()
    assert "points_executed=3" in err      # cleared, so everything re-ran


def test_compare_accepts_jobs_flag(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny", "--jobs", "2"]) == 0
    out, _ = capsys.readouterr()
    assert "speedup_sw" in out


def test_parser_defaults_for_exec_flags(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    args = build_parser().parse_args(["run", "fig10"])
    assert args.jobs == 1 and args.no_cache is False
    assert args.cache_dir == ".repro-cache"
    assert args.json is False and args.csv is False


def test_run_stats_emits_json_summary(capsys):
    assert main(["run", "fig5", "--scale", "tiny", "--json", "--stats"]) == 0
    out, err = capsys.readouterr()
    json.loads(out)                              # result unchanged by --stats
    stats = json.loads(err)
    assert stats["jobs"] == 1
    assert "fig5_tlb_sweep" in stats["timings_s"]
    assert stats["stats"]["points_submitted"] == stats["stats"][
        "points_executed"] + stats["stats"]["cache_hits"]
    assert stats["stats"]["failed_jobs"] == 0
    assert "cache" in stats


def test_compare_stats_emits_json_summary(capsys):
    assert main(["compare", "vecadd", "--scale", "tiny", "--stats"]) == 0
    _, err = capsys.readouterr()
    stats = json.loads(err)
    assert stats["total_wall_s"] >= 0
    assert "retries" in stats["stats"]
