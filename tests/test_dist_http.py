"""Tests for the HTTP broker backend: server, client, wire behaviour, CLI.

Ends with the acceptance scenario of the networked fleet: two worker
*processes* connected purely over HTTP — separate tmpdirs, no shared memo
cache, no shared filesystem — one SIGKILLed mid-sweep, and the drained
fig5-class results bit-identical to a fresh serial evaluation.
"""

import json
import pickle
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.dist import (BrokerServer, BrokerUnavailable, HTTPBroker,
                        SQLiteBroker, WireError, WireVersionError, Worker,
                        WorkItem, iter_results, submit_sweep, worker_main)
from repro.dist.http import _decoded_error
from repro.exec import SweepRunner, run_job
from repro.exec.keys import stable_key


@pytest.fixture(autouse=True)
def isolated_cache_dir(tmp_path, monkeypatch):
    """Keep CLI/service cache writes out of the repository working tree."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cli-cache"))


def square(x):
    return x * x


def _item(key, arg=2, meta=None):
    return WorkItem(key=key, payload=pickle.dumps((square, arg)), meta=meta)


@pytest.fixture()
def backend(tmp_path):
    broker = SQLiteBroker(tmp_path / "server.db", lease_seconds=10.0)
    yield broker
    broker.close()


@pytest.fixture()
def server(backend):
    server = BrokerServer(backend).start()
    yield server
    server.close()


@pytest.fixture()
def client(server):
    return HTTPBroker(server.url, retries=2, backoff_seconds=0.01)


def _post(url, body):
    if isinstance(body, dict):
        body = json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        url, data=body, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=10) as rsp:
            return rsp.status, rsp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


# ---------------------------------------------------------------------------
# Server wire behaviour
# ---------------------------------------------------------------------------
def test_ping_reports_identity_and_lease(client):
    info = client.ping()
    assert info["service"] == "repro-broker"
    assert info["wire_version"] == 1
    assert info["lease_seconds"] == 10.0
    assert client.lease_seconds == 10.0          # lazily adopted from ping


def test_malformed_json_is_a_field_level_400(server):
    status, body = _post(f"{server.url}/v1/claim", b"{not json")
    assert status == 400
    error = json.loads(body)["error"]
    assert error["type"] == "malformed-request"


def test_missing_field_names_the_field(server):
    status, body = _post(f"{server.url}/v1/claim",
                         {"version": 1, "params": {}})
    assert status == 400
    error = json.loads(body)["error"]
    assert error["type"] == "wire-error" and error["field"] == "worker"
    assert "'worker' is required" in error["message"]


def test_unknown_method_is_404(server):
    status, body = _post(f"{server.url}/v1/no_such_method",
                         {"version": 1, "params": {}})
    assert status == 404
    assert json.loads(body)["error"]["type"] == "unknown-method"


def test_non_dict_params_rejected(server):
    status, body = _post(f"{server.url}/v1/claim",
                         {"version": 1, "params": [1, 2]})
    assert status == 400
    assert json.loads(body)["error"]["field"] == "params"


def test_wire_version_mismatch_is_409_and_typed(server):
    status, body = _post(f"{server.url}/v1/status",
                         {"version": 999, "params": {"sweep_id": "x"}})
    assert status == 409
    error = json.loads(body)["error"]
    assert error["type"] == "wire-version-mismatch"
    assert "upgrade the older side" in error["message"]
    # The client maps the same response to WireVersionError.
    with pytest.raises(WireVersionError):
        raise _decoded_error(status, body)


def test_oversized_request_is_413(backend):
    server = BrokerServer(backend, max_request_bytes=128).start()
    try:
        status, body = _post(f"{server.url}/v1/status",
                             {"version": 1,
                              "params": {"sweep_id": "x" * 400}})
        assert status == 413
        assert json.loads(body)["error"]["type"] == "oversized-request"
        tight = HTTPBroker(server.url, retries=2, backoff_seconds=0.01)
        with pytest.raises(WireError, match="exceeds the server cap"):
            tight.status("x" * 400)
    finally:
        server.close()


def test_unknown_sweep_maps_to_keyerror(client):
    with pytest.raises(KeyError):
        client.status("nope")


# ---------------------------------------------------------------------------
# Blob endpoints
# ---------------------------------------------------------------------------
def test_blob_put_get_head_roundtrip(server, client):
    data = b"\x80" + b"payload" * 100
    digest = client.blobs.put(data)
    assert digest in client.blobs
    assert client.blobs.get(digest) == data
    assert "0" * 64 not in client.blobs
    with pytest.raises(KeyError):
        client.blobs.get("0" * 64)


def test_blob_put_with_wrong_digest_is_rejected(server):
    req = urllib.request.Request(
        f"{server.url}/v1/blobs/{'0' * 64}", data=b"whatever", method="PUT")
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=10)
    assert err.value.code == 400
    assert json.loads(err.value.read())["error"]["type"] == "digest-mismatch"


def test_blob_malformed_digest_is_rejected(server):
    req = urllib.request.Request(
        f"{server.url}/v1/blobs/not-a-digest", data=b"x", method="PUT")
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=10)
    assert err.value.code == 400


def test_large_payloads_travel_through_the_blob_store(server, backend):
    # inline_limit=1 forces every byte string through PUT/GET blobs.
    client = HTTPBroker(server.url, retries=2, backoff_seconds=0.01,
                        inline_limit=1)
    ticket = client.create_sweep([_item("k0", arg=9)], label="blobby")
    assert len(server.blobs) >= 1                # payload was offloaded
    worker = Worker(client, worker_id="w1")
    assert worker.run_until_idle() == 1
    (result,) = client.fetch_results(ticket.sweep_id)
    assert result.value == 81


# ---------------------------------------------------------------------------
# Client retry / failure surface
# ---------------------------------------------------------------------------
def test_client_retries_transient_500(client, backend, monkeypatch):
    ticket = client.create_sweep([_item("k0")])
    calls = {"n": 0}
    real_urlopen = urllib.request.urlopen

    def flaky(req, timeout=None):
        calls["n"] += 1
        if calls["n"] == 1:
            raise urllib.error.HTTPError(req.full_url, 500, "hiccup", {},
                                         None)
        return real_urlopen(req, timeout=timeout)

    monkeypatch.setattr(urllib.request, "urlopen", flaky)
    assert client.status(ticket.sweep_id)["total"] == 1
    assert calls["n"] >= 2                       # first attempt 500, retried


def test_dead_endpoint_raises_broker_unavailable():
    client = HTTPBroker("http://127.0.0.1:1", retries=2,
                        backoff_seconds=0.01)
    with pytest.raises(BrokerUnavailable, match="unavailable after 2"):
        client.ping()


# ---------------------------------------------------------------------------
# CLI over broker URLs
# ---------------------------------------------------------------------------
def test_cli_worker_drains_http_broker(server, client, capsys):
    ticket = client.create_sweep([_item("k0", arg=5), _item("k1", arg=6)])
    assert main(["worker", "--broker", server.url, "--no-cache",
                 "--id", "cli-w"]) == 0
    assert "executed 2 job(s)" in capsys.readouterr().err
    values = [r.value for r in client.fetch_results(ticket.sweep_id)]
    assert values == [25, 36]


def test_cli_sweep_status_and_results_over_http(server, client, capsys):
    ticket = client.create_sweep(
        [_item("k0", arg=3, meta={"position": 0, "coords": {"n": 3}})],
        label="cli-http")
    worker = Worker(client, worker_id="w1")
    worker.run_until_idle()

    assert main(["sweep", "status", "--broker", server.url,
                 ticket.sweep_id]) == 0
    out = capsys.readouterr().out
    assert "1/1 done" in out

    assert main(["sweep", "results", "--broker", server.url,
                 ticket.sweep_id]) == 0
    record = json.loads(capsys.readouterr().out.splitlines()[0])
    assert record["state"] == "done" and record["outcome"] == 9
    assert record["coords"] == {"n": 3}


def test_cli_accepts_sqlite_scheme_urls(tmp_path, capsys):
    db = tmp_path / "cli.db"
    broker = SQLiteBroker(db)
    ticket = broker.create_sweep([_item("k0")], label="via-url")
    broker.close()
    assert main(["sweep", "list", "--broker", f"sqlite://{db}"]) == 0
    assert ticket.sweep_id in capsys.readouterr().out


def test_cli_rejects_unknown_scheme(capsys):
    assert main(["sweep", "list", "--broker", "redis://nope"]) == 2
    assert "unknown broker URL scheme" in capsys.readouterr().err


def test_cli_parser_accepts_broker_serve():
    from repro.cli import build_parser
    args = build_parser().parse_args(
        ["broker", "serve", "--db", "x.db", "--port", "0"])
    assert args.command == "broker" and args.broker_command == "serve"
    assert args.db == "x.db" and args.port == 0


# ---------------------------------------------------------------------------
# Acceptance: networked fleet, no shared filesystem, one worker SIGKILLed
# ---------------------------------------------------------------------------
SPEC = {
    "label": "fig5-grid",
    "models": ["svm"],
    "kernels": ["vecadd", "matmul"],
    "scale": "tiny",
    "axes": {"tlb_entries": [4, 8, 16, 32]},
}


def test_http_fleet_sigkill_drains_bit_identical_to_serial(tmp_path):
    """Two HTTP workers in separate tmpdirs (no shared cache), one killed
    mid-sweep; the drained spec matches fresh serial evaluation exactly."""
    import multiprocessing

    from repro.dist.service import _jsonable_outcome, expand_spec

    # Fresh serial evaluation: no cache, no broker — the ground truth.
    sweep = expand_spec(SPEC)
    serial_values = SweepRunner(jobs=1).map(run_job,
                                            [p.job for p in sweep.points])
    expected = {stable_key(run_job, point.job): _jsonable_outcome(value)
                for point, value in zip(sweep.points, serial_values)}

    backend = SQLiteBroker(tmp_path / "fleet.db", lease_seconds=0.5)
    server = BrokerServer(backend).start()
    client = HTTPBroker(server.url, retries=3, backoff_seconds=0.05)
    context = multiprocessing.get_context()
    workers = []
    try:
        ticket = submit_sweep(client, SPEC)      # no memo, no results store
        assert ticket.already_done == 0
        for index in range(2):
            # Each worker gets its own tmpdir cache — nothing shared but
            # the HTTP endpoint.
            process = context.Process(
                target=worker_main,
                kwargs=dict(broker_url=server.url,
                            cache_dir=str(tmp_path / f"w{index}" / "cache"),
                            worker_id=f"hw{index}", idle_grace=120.0),
                daemon=True)
            try:
                process.start()
            except OSError:
                pytest.skip("cannot spawn worker processes here")
            workers.append(process)

        stream = iter_results(client, ticket.sweep_id, follow=True,
                              timeout=300.0)
        records = [next(stream)]                 # fleet is live
        victims = [p for p in workers if p.is_alive()]
        if victims:
            victims[0].kill()                    # SIGKILL mid-sweep
        records.extend(stream)
    finally:
        for process in workers:
            if process.is_alive():
                process.terminate()
        for process in workers:
            process.join(timeout=10.0)
        server.close()
        backend.close()

    assert len(records) == len(sweep.points)
    assert all(record["state"] == "done" for record in records)
    for record in records:
        assert record["outcome"] == expected[record["key"]]
    # The killed worker's jobs were recomputed by the survivor, not lost —
    # every worker id on the results belongs to the fleet.
    assert {record.get("worker") for record in records} <= {"hw0", "hw1"}
