"""Unit tests for the system synthesizer and design-space exploration."""

import pytest

from repro.core.dse import DesignPoint, DesignSpaceExplorer, SweepAxes, pareto_front
from repro.core.platform import Platform, PlatformConfig
from repro.core.resources import ResourceEstimate
from repro.core.spec import SystemSpec, ThreadSpec
from repro.core.synthesis import SystemSynthesizer
from repro.workloads import workload


def simple_spec(num_threads=1, kernel="vecadd", shared_walker=False, **thread_kwargs):
    threads = [ThreadSpec(name=f"hwt{i}", kernel=kernel, **thread_kwargs)
               for i in range(num_threads)]
    return SystemSpec(name="test", threads=threads, shared_walker=shared_walker)


# ---------------------------------------------------------------- synthesis
def test_synthesize_creates_one_mmu_and_walker_per_thread():
    system = SystemSynthesizer().synthesize(simple_spec(num_threads=3))
    assert len(system.threads) == 3
    walkers = {id(t.walker) for t in system.threads.values()}
    assert len(walkers) == 3
    mmus = {id(t.mmu) for t in system.threads.values()}
    assert len(mmus) == 3


def test_synthesize_shared_walker_is_single_instance():
    system = SystemSynthesizer().synthesize(
        simple_spec(num_threads=3, shared_walker=True))
    walkers = {id(t.walker) for t in system.threads.values()}
    assert len(walkers) == 1
    assert system.shared_walker is not None


def test_resource_estimate_grows_with_threads_and_tlb():
    one = SystemSynthesizer().synthesize(simple_spec(num_threads=1))
    four = SystemSynthesizer().synthesize(simple_spec(num_threads=4))
    assert four.resource_estimate().luts > one.resource_estimate().luts

    small_tlb = SystemSynthesizer().synthesize(simple_spec(tlb_entries=8))
    big_tlb = SystemSynthesizer().synthesize(simple_spec(tlb_entries=128))
    assert big_tlb.resource_estimate().luts > small_tlb.resource_estimate().luts


def test_synthesized_system_fits_device():
    system = SystemSynthesizer().synthesize(simple_spec(num_threads=2))
    assert system.fits()


def test_run_executes_kernels_and_reports_per_thread_cycles():
    platform = Platform(PlatformConfig())
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    spec = simple_spec(num_threads=1)
    system = SystemSynthesizer().synthesize(spec, platform=platform)
    result = system.run({"hwt0": bound.make_kernel()})
    assert result.ok
    assert result.total_cycles > 0
    assert result.per_thread_fabric_cycles["hwt0"] > 0
    assert result.per_thread_wall_cycles["hwt0"] > result.per_thread_fabric_cycles["hwt0"]
    assert 0.0 < result.tlb_hit_rate("hwt0") <= 1.0
    assert result.software_overhead_cycles > 0


def test_run_rejects_mismatched_kernel_bindings():
    platform = Platform(PlatformConfig())
    bound = workload("vecadd", scale="tiny").bind(platform.space)
    system = SystemSynthesizer().synthesize(simple_spec(num_threads=2),
                                            platform=platform)
    with pytest.raises(KeyError):
        system.run({"hwt0": bound.make_kernel()})                # missing hwt1
    with pytest.raises(KeyError):
        system.run({"hwt0": bound.make_kernel(),
                    "hwt1": bound.make_kernel(),
                    "ghost": bound.make_kernel()})               # unknown thread


def test_two_threads_run_concurrently():
    platform = Platform(PlatformConfig())
    first = workload("vecadd", scale="tiny").bind(platform.space)
    second = workload("saxpy", scale="tiny").bind(platform.space)
    spec = SystemSpec(name="dual", threads=[
        ThreadSpec(name="hwt0", kernel="vecadd"),
        ThreadSpec(name="hwt1", kernel="saxpy"),
    ])
    system = SystemSynthesizer().synthesize(spec, platform=platform)
    result = system.run({"hwt0": first.make_kernel(),
                         "hwt1": second.make_kernel()})
    assert result.ok
    combined = result.total_cycles
    serial = sum(result.per_thread_wall_cycles.values())
    assert combined < serial                        # overlap happened


# ---------------------------------------------------------------- DSE
def _point(runtime, luts, **params):
    return DesignPoint(parameters=tuple(sorted(params.items())),
                       runtime_cycles=runtime,
                       resources=ResourceEstimate(luts=luts))


def test_pareto_front_removes_dominated_points():
    points = [_point(100, 100, a=1), _point(90, 110, a=2),
              _point(120, 120, a=3), _point(100, 90, a=4)]
    front = pareto_front(points)
    runtimes = [p.runtime_cycles for p in front]
    assert 120 not in runtimes                      # dominated by (100, 90)
    assert _point(90, 110, a=2).params in [p.params for p in front]


def test_dominates_relation():
    assert _point(10, 10).dominates(_point(20, 20))
    assert _point(10, 20).dominates(_point(10, 30))
    assert not _point(10, 30).dominates(_point(20, 20))
    assert not _point(10, 10).dominates(_point(10, 10))


def test_explorer_enumerates_grid():
    axes = SweepAxes(tlb_entries=(8, 16), max_burst_bytes=(128,),
                     max_outstanding=(2, 4), shared_walker=(False, True))
    base = simple_spec()
    explorer = DesignSpaceExplorer(lambda spec: (1, ResourceEstimate()))
    candidates = explorer.candidates(base, axes)
    assert len(candidates) == axes.size() == 8
    tlb_values = {c.threads[0].tlb_entries for c in candidates}
    assert tlb_values == {8, 16}


def test_explorer_explore_calls_evaluator_per_candidate():
    calls = []

    def evaluator(spec):
        calls.append(spec)
        return (spec.threads[0].tlb_entries * 10,
                ResourceEstimate(luts=spec.threads[0].tlb_entries))

    axes = SweepAxes(tlb_entries=(8, 16, 32), max_burst_bytes=(256,),
                     max_outstanding=(4,), shared_walker=(False,))
    explorer = DesignSpaceExplorer(evaluator)
    points, front = explorer.explore_pareto(simple_spec(), axes)
    assert len(calls) == 3
    assert len(points) == 3
    # Smaller TLB is both faster (per this toy evaluator) and smaller: front of 1.
    assert len(front) == 1
    assert front[0].params["tlb_entries"] == 8


# ------------------------------------------------------- pareto (O(n log n))
def _brute_force_front(points):
    # Same canonical order pareto_front promises: ties on both objectives
    # break on the parameters, never on input order.
    front = [p for p in points
             if not any(q.dominates(p) for q in points if q is not p)]
    return sorted(front, key=lambda p: (p.runtime_cycles, p.luts,
                                        repr(p.parameters)))


def test_pareto_front_matches_brute_force_oracle_on_random_sets():
    import random
    rng = random.Random(20260730)
    for trial in range(200):
        n = rng.randrange(0, 40)
        points = [_point(rng.randrange(1, 20), rng.randrange(1, 20), i=i)
                  for i in range(n)]
        assert pareto_front(points) == _brute_force_front(points), \
            f"trial {trial} diverged"


def test_pareto_front_keeps_exact_duplicates_and_drops_lut_ties():
    # Equal (runtime, luts) duplicates dominate nothing and stay; a point
    # with equal runtime but more LUTs is dominated.
    dup_a, dup_b = _point(10, 5, i=0), _point(10, 5, i=1)
    fat = _point(10, 7, i=2)
    slower_smaller = _point(20, 3, i=3)
    front = pareto_front([fat, dup_a, slower_smaller, dup_b])
    assert fat not in front
    assert dup_a in front and dup_b in front and slower_smaller in front


def test_pareto_front_empty_and_singleton():
    assert pareto_front([]) == []
    only = _point(5, 5)
    assert pareto_front([only]) == [only]


def test_pareto_front_tie_order_is_input_order_independent():
    # Points equal on both objectives used to keep whatever relative order
    # the input happened to have; the front — order included — must be a
    # pure function of the point *set* (the dse oracle suite compares
    # fronts for exact equality).
    import itertools

    ties = [_point(10, 5, cfg=name) for name in ("delta", "alpha", "carol")]
    slower = _point(20, 3, cfg="zed")
    fronts = {tuple(p.params["cfg"] for p in pareto_front(list(perm)))
              for perm in itertools.permutations(ties + [slower])}
    assert fronts == {("alpha", "carol", "delta", "zed")}


# ----------------------------------------------------------- runner seam
def test_explore_with_runner_matches_serial():
    from repro.exec import MemoCache, SweepRunner

    def evaluator(spec):
        return (spec.threads[0].tlb_entries * 10 + spec.threads[0].max_burst_bytes,
                ResourceEstimate(luts=spec.threads[0].tlb_entries))

    axes = SweepAxes(tlb_entries=(8, 16, 32), max_burst_bytes=(128, 256),
                     max_outstanding=(4,), shared_walker=(False,))
    explorer = DesignSpaceExplorer(evaluator)
    serial = explorer.explore(simple_spec(), axes)
    runner = SweepRunner(jobs=4, cache=MemoCache())
    parallel = explorer.explore(simple_spec(), axes, runner=runner)
    assert parallel == serial
    assert runner.stats.points_submitted == axes.size()
    # Unpicklable local evaluator: the runner degrades to its serial path.
    assert runner.stats.parallel_batches == 0
    assert runner.stats.serial_batches >= 1


# ------------------------------------------------------- policy sweep axis
def test_policy_axis_expands_the_grid_and_marks_candidates():
    axes = SweepAxes(tlb_entries=(8,), max_burst_bytes=(128,),
                     max_outstanding=(4,), shared_walker=(False,),
                     policy=(None, "round-robin", "adaptive-fault"))
    base = simple_spec()
    explorer = DesignSpaceExplorer(lambda spec: (1, ResourceEstimate()))
    candidates = explorer.candidates(base, axes)
    assert len(candidates) == axes.size() == 3
    assert [c.scheduling_policy for c in candidates] == [
        None, "round-robin", "adaptive-fault"]


def test_policy_axis_reaches_the_evaluator_and_the_design_points():
    seen = []

    def evaluator(spec):
        seen.append(spec.scheduling_policy)
        return (1, ResourceEstimate())

    axes = SweepAxes(tlb_entries=(8,), max_burst_bytes=(128,),
                     max_outstanding=(4,), shared_walker=(False,),
                     policy=("round-robin", "miss-fair"))
    explorer = DesignSpaceExplorer(evaluator)
    points = explorer.explore(simple_spec(), axes)
    assert seen == ["round-robin", "miss-fair"]
    assert [p.params["policy"] for p in points] == ["round-robin",
                                                    "miss-fair"]
    # The default axis (policy=None) keeps params backward-compatible.
    default_points = DesignSpaceExplorer(
        lambda spec: (1, ResourceEstimate())).explore(simple_spec())
    assert all("policy" not in p.params for p in default_points)


def test_system_spec_rejects_unknown_scheduling_policy():
    import pytest
    from repro.core.spec import SystemSpec, ThreadSpec
    with pytest.raises(ValueError):
        SystemSpec(name="bad", threads=[ThreadSpec(name="t", kernel="vecadd")],
                   scheduling_policy="no-such-policy")
    spec = SystemSpec(name="ok", threads=[ThreadSpec(name="t", kernel="vecadd")],
                      scheduling_policy="adaptive-fault")
    assert spec.scheduling_policy == "adaptive-fault"


def test_policy_axis_drives_a_multiprocess_evaluation_end_to_end():
    # The axis is explorable against real contention runs: the evaluator
    # builds a MultiProcessSpec from the candidate's scheduling policy.
    from repro.eval.harness import HarnessConfig, run_multiprocess
    from repro.workloads import contention

    def evaluator(spec):
        mp = contention(["vecadd", "vecadd"], scale="tiny",
                        policy=spec.scheduling_policy or "round-robin")
        result = run_multiprocess(mp, HarnessConfig(
            tlb_entries=spec.threads[0].tlb_entries))
        return result.total_cycles, ResourceEstimate()

    axes = SweepAxes(tlb_entries=(16,), max_burst_bytes=(256,),
                     max_outstanding=(4,), shared_walker=(False,),
                     policy=("round-robin", "adaptive-fault"))
    points = DesignSpaceExplorer(evaluator).explore(simple_spec(), axes)
    assert len(points) == 2
    assert all(p.runtime_cycles > 0 for p in points)
    assert {p.params["policy"] for p in points} == {"round-robin",
                                                    "adaptive-fault"}
