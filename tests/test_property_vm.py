"""Property-based tests for TLB and page-table invariants.

Random operation sequences — fill/lookup/invalidate/activate/shootdown
across random ASIDs — drive the real structures next to trivially correct
reference models (plain dicts).  The invariants pinned here are exactly the
ones no golden figure can see:

* a translation never leaks across ASIDs (a lookup under one address space
  never returns another space's frame),
* capacity is never exceeded (globally and per set),
* the resident set always matches the reference model exactly (for the
  deterministic fully-associative LRU organisation) or is always a sound
  subset of what was inserted (for every organisation/replacement policy),
* the page table is equivalent to a dict from VPN to PTE state.

Frames are derived from ``(asid, vpn)`` (``frame = asid * 1000 + vpn``), so
any cross-space mix-up surfaces as a frame mismatch, not just a key error —
e.g. dropping the ASID from the TLB key makes these tests fail immediately.
"""

from collections import OrderedDict

from hypothesis import given, settings, strategies as st

from repro.vm.pagetable import PageTable, PageTableConfig
from repro.vm.tlb import TLB, TLBConfig

ASIDS = (1, 2, 3)
VPNS = tuple(range(12))


def expected_frame(asid: int, vpn: int) -> int:
    return asid * 1000 + vpn


# One operation: ("activate", asid) | ("fill", vpn) | ("lookup", vpn)
# | ("invalidate", vpn) | ("shootdown", vpn, asid) | ("shootdown_all", vpn)
# | ("flush",).  fill/lookup act on the *currently activated* address space,
# like an MMU serving one process per time slice.
tlb_ops = st.lists(st.one_of(
    st.tuples(st.just("activate"), st.sampled_from(ASIDS)),
    st.tuples(st.just("fill"), st.sampled_from(VPNS)),
    st.tuples(st.just("lookup"), st.sampled_from(VPNS)),
    st.tuples(st.just("shootdown"), st.sampled_from(VPNS),
              st.sampled_from(ASIDS)),
    st.tuples(st.just("shootdown_all"), st.sampled_from(VPNS)),
    st.just(("flush",)),
), min_size=1, max_size=60)


def tlb_keys(tlb: TLB):
    return {key for tlb_set in tlb._sets for key in tlb_set}


# ---------------------------------------------------------------------------
# Exact reference model: fully-associative LRU is deterministic
# ---------------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(ops=tlb_ops, entries=st.sampled_from((2, 4, 8)))
def test_property_fa_lru_tlb_matches_reference_dict_model(ops, entries):
    tlb = TLB(TLBConfig(entries=entries))       # fully associative, LRU
    model: OrderedDict = OrderedDict()          # (asid, vpn) -> frame
    asid = ASIDS[0]

    for op in ops:
        if op[0] == "activate":
            asid = op[1]                        # context switch: no flush
        elif op[0] == "fill":
            vpn = op[1]
            frame = expected_frame(asid, vpn)
            tlb.insert(vpn, frame, writable=True, asid=asid)
            key = (asid, vpn)
            if key in model:
                model[key] = frame              # refresh in place, no reorder
            else:
                if len(model) >= entries:
                    model.popitem(last=False)   # LRU eviction
                model[key] = frame
        elif op[0] == "lookup":
            vpn = op[1]
            entry = tlb.lookup(vpn, asid=asid)
            key = (asid, vpn)
            if key in model:
                assert entry is not None
                assert entry.asid == asid
                assert entry.frame == model[key] == expected_frame(asid, vpn)
                model.move_to_end(key)          # LRU touch
            else:
                assert entry is None            # incl. other spaces' entries
        elif op[0] == "shootdown":
            _, vpn, target = op
            assert tlb.invalidate(vpn, asid=target) == \
                (model.pop((target, vpn), None) is not None)
        elif op[0] == "shootdown_all":
            vpn = op[1]
            victims = [k for k in model if k[1] == vpn]
            assert tlb.invalidate(vpn, asid=None) == bool(victims)
            for key in victims:
                del model[key]
        elif op[0] == "flush":
            assert tlb.flush() == len(model)
            model.clear()

        # Invariants after *every* operation.
        assert tlb.occupancy == len(tlb) == len(model) <= entries
        assert tlb_keys(tlb) == set(model)
        for space in ASIDS:
            assert sorted(tlb.resident_vpns(space)) == \
                sorted(v for (a, v) in model if a == space)
        assert sorted(tlb.resident_vpns()) == sorted(v for (_, v) in model)


# ---------------------------------------------------------------------------
# Soundness for every organisation and replacement policy
# ---------------------------------------------------------------------------
@settings(max_examples=120, deadline=None)
@given(ops=tlb_ops,
       entries=st.sampled_from((2, 4, 8, 16)),
       ways=st.sampled_from((None, 1, 2)),
       replacement=st.sampled_from(("lru", "fifo", "random")))
def test_property_any_tlb_config_is_sound_and_asid_isolated(
        ops, entries, ways, replacement):
    if ways is not None and entries % ways:
        ways = 1
    tlb = TLB(TLBConfig(entries=entries, associativity=ways,
                        replacement=replacement))
    written = {}                                # (asid, vpn) -> last frame
    asid = ASIDS[0]

    for op in ops:
        if op[0] == "activate":
            asid = op[1]
        elif op[0] == "fill":
            vpn = op[1]
            tlb.insert(vpn, expected_frame(asid, vpn), writable=True,
                       asid=asid)
            written[(asid, vpn)] = expected_frame(asid, vpn)
        elif op[0] == "lookup":
            vpn = op[1]
            entry = tlb.lookup(vpn, asid=asid)
            if entry is not None:
                # Never another address space's translation.
                assert entry.asid == asid
                assert entry.frame == written[(asid, vpn)]
        elif op[0] == "shootdown":
            _, vpn, target = op
            tlb.invalidate(vpn, asid=target)
            written.pop((target, vpn), None)
        elif op[0] == "shootdown_all":
            vpn = op[1]
            tlb.invalidate(vpn, asid=None)
            for space in ASIDS:
                written.pop((space, vpn), None)
        elif op[0] == "flush":
            tlb.flush()
            written.clear()

        # Capacity: global and per set (a set never exceeds its ways).
        assert tlb.occupancy <= entries
        assert all(len(s) <= tlb.config.ways for s in tlb._sets)
        # Soundness: everything resident was inserted (and not invalidated),
        # with the exact frame its own address space wrote.
        for tlb_set in tlb._sets:
            for key, entry in tlb_set.items():
                assert written[key] == entry.frame
                assert key[0] == entry.asid and key[1] == entry.vpn


# ---------------------------------------------------------------------------
# Page table vs dict model
# ---------------------------------------------------------------------------
pt_ops = st.lists(st.one_of(
    st.tuples(st.just("map"), st.sampled_from(VPNS), st.booleans(),
              st.booleans()),
    st.tuples(st.just("unmap"), st.sampled_from(VPNS)),
    st.tuples(st.just("set_present"), st.sampled_from(VPNS), st.booleans()),
    st.tuples(st.just("protect"), st.sampled_from(VPNS), st.booleans()),
), min_size=1, max_size=60)


@settings(max_examples=120, deadline=None)
@given(ops=pt_ops, levels=st.sampled_from((1, 2, 3)))
def test_property_pagetable_matches_dict_model(ops, levels):
    table = PageTable(PageTableConfig(levels=levels), asid=1)
    model = {}                                  # vpn -> [frame, present, writable]

    for index, op in enumerate(ops):
        vpn = op[1]
        if op[0] == "map":
            _, vpn, present, writable = op
            table.map(vpn, frame=index, present=present, writable=writable)
            model[vpn] = [index, present, writable]
        elif op[0] == "unmap":
            removed = table.unmap(vpn)
            assert (removed is not None) == (vpn in model)
            model.pop(vpn, None)
        elif op[0] == "set_present":
            _, vpn, present = op
            if vpn in model:
                table.set_present(vpn, present)
                model[vpn][1] = present
        elif op[0] == "protect":
            _, vpn, writable = op
            if vpn in model:
                table.protect(vpn, writable=writable)
                model[vpn][2] = writable

        # The table is exactly the dict, whatever the radix depth.
        assert table.num_mapped_pages == len(model)
        assert sorted(table.mapped_vpns()) == sorted(model)
        assert sorted(table.resident_vpns()) == \
            sorted(v for v, (_, present, _) in model.items() if present)
        for v, (frame, present, writable) in model.items():
            entry = table.entry(v)
            assert entry is not None
            assert (entry.frame, entry.present, entry.writable) == \
                (frame, present, writable)
        for v in set(VPNS) - set(model):
            assert table.entry(v) is None
