"""Unit and property tests for the physical frame allocators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mem.layout import Region
from repro.os.frames import (
    FrameAllocator,
    OutOfMemoryError,
    ReservedAllocator,
    make_default_allocators,
)


def make_allocator(num_frames=16, page_size=4096):
    region = Region("test", 0x100000, num_frames * page_size)
    return FrameAllocator(region, page_size=page_size)


def test_allocate_returns_distinct_frames_within_region():
    alloc = make_allocator(8)
    frames = [alloc.allocate() for _ in range(8)]
    assert len(set(frames)) == 8
    for frame in frames:
        addr = alloc.frame_address(frame)
        assert 0x100000 <= addr < 0x100000 + 8 * 4096


def test_exhaustion_raises_oom():
    alloc = make_allocator(4)
    for _ in range(4):
        alloc.allocate()
    with pytest.raises(OutOfMemoryError):
        alloc.allocate()


def test_free_allows_reuse():
    alloc = make_allocator(2)
    a = alloc.allocate()
    b = alloc.allocate()
    alloc.free(a)
    c = alloc.allocate()
    assert c == a
    assert alloc.frames_allocated == 2


def test_double_free_rejected():
    alloc = make_allocator(4)
    frame = alloc.allocate()
    alloc.free(frame)
    with pytest.raises(ValueError):
        alloc.free(frame)


def test_free_of_never_allocated_rejected():
    alloc = make_allocator(4)
    with pytest.raises(ValueError):
        alloc.free(12345)


def test_contiguous_allocation_is_contiguous():
    alloc = make_allocator(16)
    first = alloc.allocate_contiguous(4)
    for i in range(4):
        assert alloc.is_allocated(first + i)
    second = alloc.allocate_contiguous(2)
    assert second == first + 4


def test_contiguous_allocation_respects_capacity():
    alloc = make_allocator(4)
    with pytest.raises(OutOfMemoryError):
        alloc.allocate_contiguous(5)
    with pytest.raises(ValueError):
        alloc.allocate_contiguous(0)


def test_counters_consistent():
    alloc = make_allocator(10)
    assert alloc.frames_total == 10
    a = alloc.allocate()
    assert alloc.frames_allocated == 1
    assert alloc.frames_free == 9
    alloc.free(a)
    assert alloc.frames_free == 10


def test_unaligned_region_is_aligned_up():
    region = Region("odd", 0x1001, 3 * 4096)
    alloc = FrameAllocator(region, page_size=4096)
    frame = alloc.allocate()
    assert alloc.frame_address(frame) % 4096 == 0
    assert alloc.frame_address(frame) >= 0x1001


def test_too_small_region_rejected():
    with pytest.raises(ValueError):
        FrameAllocator(Region("tiny", 0, 1024), page_size=4096)
    with pytest.raises(ValueError):
        FrameAllocator(Region("ok", 0, 8192), page_size=1000)


def test_reserved_allocator_bumps_and_exhausts():
    reserved = ReservedAllocator(Region("res", 0x1000, 4096), alignment=64)
    first = reserved.allocate(100)
    second = reserved.allocate(100)
    assert second >= first + 100
    assert second % 64 == 0
    assert reserved.bytes_used > 200
    with pytest.raises(OutOfMemoryError):
        reserved.allocate(8192)
    with pytest.raises(ValueError):
        reserved.allocate(0)


def test_make_default_allocators_consistent_page_size():
    frames, reserved, memory_map = make_default_allocators(page_size=8192)
    assert frames.page_size == 8192
    frame = frames.allocate()
    assert memory_map.validate_physical(frames.frame_address(frame), 8192)
    assert reserved.region.name == "os_reserved"


@settings(max_examples=40, deadline=None)
@given(operations=st.lists(st.booleans(), min_size=1, max_size=200))
def test_property_allocated_count_matches_operations(operations):
    alloc = make_allocator(64)
    live = []
    for do_alloc in operations:
        if do_alloc or not live:
            if alloc.frames_free:
                live.append(alloc.allocate())
        else:
            alloc.free(live.pop())
        assert alloc.frames_allocated == len(live)
        assert alloc.frames_allocated + alloc.frames_free == alloc.frames_total


@settings(max_examples=40, deadline=None)
@given(count=st.integers(min_value=1, max_value=64))
def test_property_all_frames_unique_until_exhaustion(count):
    alloc = make_allocator(64)
    frames = [alloc.allocate() for _ in range(count)]
    assert len(set(frames)) == count
