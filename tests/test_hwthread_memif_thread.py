"""Unit tests for the hardware-thread memory interface and execution model."""

import pytest

from repro.mem.port import LatencyPipe
from repro.sim.engine import Simulator
from repro.sim.process import Access, Burst, Compute, Fence
from repro.vm.faults import ImmediateFaultHandler
from repro.vm.mmu import MMU, MMUConfig
from repro.vm.pagetable import PageTable
from repro.vm.tlb import TLBConfig
from repro.vm.walker import PageTableWalker
from repro.hwthread.memif import MemoryInterface, MemoryInterfaceConfig
from repro.hwthread.thread import HardwareThread, HardwareThreadConfig


def make_fabric(mapped_pages=64, mem_latency=20, with_mmu=True,
                max_burst_bytes=256):
    sim = Simulator()
    pipe = LatencyPipe(sim, latency=mem_latency)
    table = PageTable()
    for vpn in range(mapped_pages):
        table.map(vpn, frame=vpn + 1000)
    if with_mmu:
        walker = PageTableWalker(sim, port=LatencyPipe(sim, latency=10))
        mmu = MMU(sim, table, walker,
                  fault_handler=ImmediateFaultHandler(table),
                  config=MMUConfig(tlb=TLBConfig(entries=16)))
        memif = MemoryInterface(sim, pipe, mmu=mmu,
                                config=MemoryInterfaceConfig(
                                    max_burst_bytes=max_burst_bytes))
    else:
        translator = lambda vaddr, access: vaddr + 0x10000000
        mmu = None
        memif = MemoryInterface(sim, pipe, translator=translator,
                                config=MemoryInterfaceConfig(
                                    max_burst_bytes=max_burst_bytes))
    return sim, pipe, table, mmu, memif


def run_thread(sim, memif, kernel, **config):
    thread = HardwareThread(sim, kernel, memif,
                            config=HardwareThreadConfig(**config) if config else None)
    outcomes = []
    thread.start(lambda ok: outcomes.append(ok))
    sim.run()
    assert outcomes, "thread never finished"
    return thread, outcomes[0]


# ---------------------------------------------------------------- memif
def test_memif_translates_and_issues_physical_address():
    sim, pipe, table, mmu, memif = make_fabric()
    done = []
    memif.submit(Access(addr=3 * 4096 + 16, size=4), lambda ok: done.append(ok))
    sim.run()
    assert done == [True]
    assert pipe.requests[0].addr == (3 + 1000) * 4096 + 16


def test_memif_splits_burst_at_page_boundary():
    sim, pipe, table, mmu, memif = make_fabric()
    # 512-byte burst starting 128 bytes before a page boundary.
    start = 4096 - 128
    memif.submit(Burst(addr=start, count=128, size=4), lambda ok: None)
    sim.run()
    assert len(pipe.requests) >= 2
    assert sum(r.size for r in pipe.requests) == 512
    # First chunk must not cross the page boundary.
    assert pipe.requests[0].size == 128


def test_memif_splits_burst_at_max_burst_bytes():
    sim, pipe, table, mmu, memif = make_fabric(max_burst_bytes=64)
    memif.submit(Burst(addr=0, count=64, size=4), lambda ok: None)
    sim.run()
    assert len(pipe.requests) == 4
    assert all(r.size == 64 for r in pipe.requests)


def test_memif_functional_translator_mode():
    sim, pipe, _, _, memif = make_fabric(with_mmu=False)
    memif.submit(Access(addr=0x4000, size=8), lambda ok: None)
    sim.run()
    assert pipe.requests[0].addr == 0x4000 + 0x10000000


def test_memif_reports_abort_on_unmapped_page():
    sim, pipe, table, mmu, memif = make_fabric(mapped_pages=1)
    done = []
    memif.submit(Access(addr=50 * 4096, size=4), lambda ok: done.append(ok))
    sim.run()
    assert done == [False]
    assert not pipe.requests


def test_memif_requires_translation_source():
    sim = Simulator()
    with pytest.raises(ValueError):
        MemoryInterface(sim, LatencyPipe(sim))


# ---------------------------------------------------------------- thread
def test_thread_completes_compute_only_kernel():
    sim, _, _, _, memif = make_fabric()

    def kernel():
        yield Compute(100)
        yield Compute(50)

    thread, ok = run_thread(sim, memif, kernel())
    assert ok
    assert thread.cycles >= 150
    assert thread.stats.counter("compute_cycles").value == 150


def test_thread_overlaps_memory_with_compute():
    sim, _, _, _, memif = make_fabric(mem_latency=200)

    def kernel():
        yield Burst(addr=0, count=16, size=4)
        yield Compute(200)
        yield Fence()

    thread, ok = run_thread(sim, memif, kernel())
    assert ok
    # Memory (≈200+) overlaps the 200-cycle compute: total well below the sum.
    assert thread.cycles < 380


def test_fence_waits_for_outstanding_memory():
    sim, pipe, _, _, memif = make_fabric(mem_latency=300)
    timeline = []

    def kernel():
        yield Burst(addr=0, count=16, size=4)
        yield Fence()
        timeline.append(sim.now)
        yield Compute(1)

    thread, ok = run_thread(sim, memif, kernel())
    assert ok
    assert timeline[0] >= 300


def test_outstanding_window_limits_inflight_requests():
    sim, pipe, _, _, memif = make_fabric(mem_latency=100)

    def kernel():
        for i in range(8):
            yield Access(addr=i * 64, size=4)
        yield Fence()

    thread, ok = run_thread(sim, memif, kernel(), max_outstanding=1)
    assert ok
    serial_cycles = thread.cycles

    sim2, pipe2, _, _, memif2 = make_fabric(mem_latency=100)

    def kernel2():
        for i in range(8):
            yield Access(addr=i * 64, size=4)
        yield Fence()

    thread2, ok2 = run_thread(sim2, memif2, kernel2(), max_outstanding=8)
    assert ok2
    assert thread2.cycles < serial_cycles


def test_thread_aborts_on_fatal_translation_fault():
    sim, _, table, mmu, memif = make_fabric(mapped_pages=1)
    mmu.fault_handler = None        # faults become fatal

    def kernel():
        yield Access(addr=0, size=4)
        yield Access(addr=40 * 4096, size=4)
        yield Compute(10)

    thread, ok = run_thread(sim, memif, kernel())
    assert not ok
    assert thread.aborted
    assert thread.stats.counter("aborts").value == 1


def test_thread_counts_memory_traffic():
    sim, _, _, _, memif = make_fabric()

    def kernel():
        yield Burst(addr=0, count=32, size=4)
        yield Access(addr=8192, size=8, is_write=True)
        yield Fence()

    thread, ok = run_thread(sim, memif, kernel())
    assert ok
    assert thread.stats.counter("mem_ops").value == 2
    assert thread.stats.counter("mem_bytes").value == 32 * 4 + 8


def test_thread_cannot_start_twice():
    sim, _, _, _, memif = make_fabric()

    def kernel():
        yield Compute(1)

    thread = HardwareThread(sim, kernel(), memif)
    thread.start()
    with pytest.raises(RuntimeError):
        thread.start()


def test_start_latency_delays_first_operation():
    sim, pipe, _, _, memif = make_fabric(mem_latency=0)

    def kernel():
        yield Access(addr=0, size=4)
        yield Fence()

    thread, ok = run_thread(sim, memif, kernel(), start_latency=50)
    assert ok
    assert pipe.requests[0].issue_cycle >= 50


def test_invalid_thread_config_rejected():
    with pytest.raises(ValueError):
        HardwareThreadConfig(max_outstanding=0)
    with pytest.raises(ValueError):
        HardwareThreadConfig(start_latency=-1)
    with pytest.raises(ValueError):
        MemoryInterfaceConfig(max_burst_bytes=0)
