"""Multi-process workloads and ASID semantics under shared-TLB contention.

The PR-1 ASID work made TLB entries ``(asid, vpn)``-keyed; these tests
exercise that end to end: two address spaces with *identical* virtual
layouts share one fabric TLB, time-sliced or concurrent, with wildcard and
targeted shootdowns landing mid-sweep — and no translation may ever leak
across address spaces.
"""

import pytest

from repro.core.spec import SystemSpec
from repro.core.synthesis import SystemSynthesizer
from repro.core.platform import Platform, PlatformConfig
from repro.eval.harness import HarnessConfig, run_multiprocess, run_svm
from repro.os.scheduler import RoundRobinScheduler, SchedulerConfig
from repro.workloads import MultiProcessSpec, contention, duet, workload
from repro.workloads.multiprocess import (estimate_demand, estimate_pressure,
                                          slice_plan, time_sliced_kernel)
from repro.sim.process import Compute, Fence, run_functional


# ---------------------------------------------------------------------------
# Spec and slicing machinery
# ---------------------------------------------------------------------------
def test_multiprocess_spec_validates():
    single = workload("vecadd", scale="tiny")
    with pytest.raises(ValueError):
        MultiProcessSpec(name="none", specs=())
    with pytest.raises(ValueError):
        MultiProcessSpec(name="bad", specs=(single, single), quantum=0)
    with pytest.raises(ValueError):
        MultiProcessSpec(name="bad", specs=(single, single),
                         policy="no-such-policy")
    with pytest.raises(ValueError):
        MultiProcessSpec(name="bad", specs=(single, single), weights=(1.0,))
    with pytest.raises(ValueError):
        MultiProcessSpec(name="bad", specs=(single, single),
                         weights=(1.0, 0.0))
    # A single process is the no-contention control point of N sweeps.
    solo = MultiProcessSpec(name="solo", specs=(single,))
    assert solo.num_processes == 1
    mp = duet("vecadd", "linked_list", scale="tiny")
    assert mp.num_processes == 2
    assert mp.work_items == sum(s.work_items for s in mp.specs)


def test_contention_builds_n_processes_with_distinct_seeds():
    mp = contention(["vecadd"] * 4, scale="tiny", quantum=3000,
                    policy="weighted-fair", weights=(1, 2, 3, 4))
    assert mp.num_processes == 4
    assert mp.policy == "weighted-fair"
    assert [mp.weight_of(i) for i in range(4)] == [1, 2, 3, 4]
    assert len({s.seed for s in mp.specs}) == 4
    with pytest.raises(ValueError):
        contention([])


def test_scheduler_timeline_covers_demand_without_overlap():
    scheduler = RoundRobinScheduler(SchedulerConfig(num_cores=1, quantum=100,
                                                    context_switch_cycles=10))
    demands = [("0", 250), ("1", 120)]
    timeline = scheduler.timeline(demands)
    per_thread = {"0": 0, "1": 0}
    previous_end = 0
    for ts in timeline:
        assert ts.start >= previous_end          # single core: no overlap
        previous_end = ts.end
        per_thread[ts.thread] += ts.cycles
    assert per_thread == {"0": 250, "1": 120}
    # Timeline agrees with the scheduler's own makespan accounting.
    assert max(ts.end for ts in timeline) == scheduler.makespan(demands)


def test_slice_plan_preserves_program_order_and_coverage():
    ops_a = run_functional(workload("vecadd", scale="tiny").bind(
        Platform(PlatformConfig()).space).make_kernel())
    ops_b = [Compute(cycles=10) for _ in range(50)]
    plan = slice_plan([ops_a, ops_b], quantum=2000)
    replayed = {0: [], 1: []}
    for process, chunk in plan:
        replayed[process].extend(chunk)
    assert replayed[0] == ops_a
    assert replayed[1] == ops_b
    assert len(plan) > 2                          # actually interleaved


def test_time_sliced_kernel_fences_and_stalls_at_switches():
    plan = [(0, [Compute(cycles=5)]), (1, [Compute(cycles=5)]),
            (0, [Compute(cycles=5)])]
    switches = []
    ops = list(time_sliced_kernel(plan, lambda p: switches.append(p) or 7))
    assert switches == [1, 0]
    fences = [op for op in ops if isinstance(op, Fence)]
    stalls = [op for op in ops if isinstance(op, Compute) and op.cycles == 7]
    assert len(fences) == 2 and len(stalls) == 2


def test_estimate_demand_is_monotonic_in_work():
    small = run_functional(workload("vecadd", scale="tiny", n=256).bind(
        Platform(PlatformConfig()).space).make_kernel())
    large = run_functional(workload("vecadd", scale="tiny", n=4096).bind(
        Platform(PlatformConfig()).space).make_kernel())
    assert estimate_demand(large) > estimate_demand(small) > 0


# ---------------------------------------------------------------------------
# End-to-end multi-process runs
# ---------------------------------------------------------------------------
def test_multiprocess_run_time_slices_two_spaces_on_one_tlb():
    mp = duet("vecadd", "vecadd", scale="tiny", quantum=4000)
    result = run_multiprocess(mp, HarnessConfig(tlb_entries=16))
    assert result.ok
    assert result.context_switches >= 2
    # Both spaces translated through the one MMU: misses from both layouts.
    assert result.tlb_misses > 0
    assert result.total_cycles > run_svm(
        mp.specs[0], HarnessConfig(tlb_entries=16)).total_cycles


def test_multiprocess_identical_layouts_never_leak_translations():
    # The adversarial case: both processes map the *same* virtual pages.
    # After the run, every surviving TLB entry must map to the frame its own
    # address space's page table holds for that page — not its neighbour's.
    mp = duet("vecadd", "vecadd", scale="tiny", quantum=3000)
    config = HarnessConfig(tlb_entries=64)
    platform = Platform(config.platform)

    # Reproduce run_multiprocess's wiring by hand so we keep the pieces.
    from repro.sim.process import run_functional as materialise
    space_a = platform.space
    space_b = platform.kernel.create_process("app1")
    handler_b = platform.kernel.fault_handler("app1")
    bound = [mp.specs[0].bind(space_a), mp.specs[1].bind(space_b)]
    assert [a.start for a in space_a.areas] == [a.start for a in space_b.areas]

    spec = SystemSpec(name="leaktest",
                      threads=[config.thread_spec("hwt0", "vecadd")],
                      platform=config.platform, shared_tlb=True)
    system = SystemSynthesizer().synthesize(spec, platform=platform)
    synth = system.threads["hwt0"]
    space_b.register_shootdown_target(synth.mmu)

    plan = slice_plan([materialise(b.make_kernel()) for b in bound],
                      quantum=mp.quantum)
    spaces = [space_a, space_b]
    handlers = [platform.fault_handler(), handler_b]

    def on_switch(process):
        synth.mmu.activate(spaces[process].page_table, handlers[process])
        return platform.kernel.cost_context_switch()

    result = system.run({"hwt0": time_sliced_kernel(plan, on_switch)})
    assert not result.aborted_threads

    tlb = synth.mmu.tlb
    assert tlb is system.shared_tlb
    checked = 0
    for tlb_set in tlb._sets:
        for (asid, vpn), entry in tlb_set.items():
            owner = next(s for s in spaces if s.page_table.asid == asid)
            pte = owner.page_table.entry(vpn)
            assert pte is not None and pte.present
            assert entry.frame == pte.frame       # no cross-space leak
            checked += 1
    assert checked > 0
    # Both address spaces actually left residue in the shared TLB.
    assert len({asid for s in tlb._sets for (asid, _) in s}) == 2


def test_shootdowns_hit_a_shared_tlb_mid_sweep():
    # Wildcard (asid=None) and targeted shootdowns land while both spaces
    # have live entries in one TLB: the targeted one must be surgical.
    config = HarnessConfig(tlb_entries=64)
    platform = Platform(config.platform)
    space_a = platform.space
    space_b = platform.kernel.create_process("app1")

    spec = SystemSpec(name="shootdown",
                      threads=[config.thread_spec("hwt0", "vecadd")],
                      platform=config.platform, shared_tlb=True)
    system = SystemSynthesizer().synthesize(spec, platform=platform)
    mmu = system.threads["hwt0"].mmu
    space_b.register_shootdown_target(mmu)   # the MMU serves space B too
    tlb = mmu.tlb

    area_a = space_a.mmap(4 * 4096, name="a")
    area_b = space_b.mmap(4 * 4096, name="b", fixed_addr=area_a.start)
    vpns = space_a.vpns_of(area_a)
    assert vpns == space_b.vpns_of(area_b)        # identical virtual pages

    for space in (space_a, space_b):
        for vpn in vpns:
            pte = space.page_table.entry(vpn)
            tlb.insert(vpn, pte.frame, True, asid=space.page_table.asid)
    assert len(tlb) == 2 * len(vpns)

    # Targeted shootdown via the kernel: only space A's entry dies.
    platform.kernel.register_shootdown_target(mmu)
    platform.kernel.shootdown(vpns[0], asid=space_a.page_table.asid)
    assert (space_a.page_table.asid, vpns[0]) not in tlb
    assert (space_b.page_table.asid, vpns[0]) in tlb

    # Wildcard shootdown: every space's entry for that page dies.
    platform.kernel.shootdown(vpns[1], asid=None)
    assert (space_a.page_table.asid, vpns[1]) not in tlb
    assert (space_b.page_table.asid, vpns[1]) not in tlb

    # munmap in one space shoots down only that space's remaining entries.
    space_b.munmap(area_b)
    for vpn in vpns[2:]:
        assert (space_a.page_table.asid, vpn) in tlb
        assert (space_b.page_table.asid, vpn) not in tlb

    # Functional check: space A still translates to its own frames.
    for vpn in vpns[2:]:
        entry = tlb.lookup(vpn, asid=space_a.page_table.asid)
        assert entry.frame == space_a.page_table.entry(vpn).frame


def test_concurrent_threads_in_different_spaces_share_one_tlb():
    # Two hardware threads, two address spaces, one TLB — the synthesize()
    # `spaces=` mapping — running concurrently, not time-sliced.
    config = HarnessConfig(tlb_entries=16)
    platform = Platform(config.platform)
    space_b = platform.kernel.create_process("app1")

    spec_a = workload("vecadd", scale="tiny")
    spec_b = workload("vecadd", scale="tiny")
    bound_a = spec_a.bind(platform.space)
    bound_b = spec_b.bind(space_b)

    system_spec = SystemSpec(
        name="duo",
        threads=[config.thread_spec("hwt0", "vecadd"),
                 config.thread_spec("hwt1", "vecadd")],
        platform=config.platform, shared_tlb=True)
    system = SystemSynthesizer().synthesize(system_spec, platform=platform,
                                            spaces={"hwt1": "app1"})
    assert system.threads["hwt0"].mmu.tlb is system.threads["hwt1"].mmu.tlb
    assert system.threads["hwt1"].mmu.page_table is space_b.page_table

    result = system.run({"hwt0": bound_a.make_kernel(),
                         "hwt1": bound_b.make_kernel()})
    assert not result.aborted_threads
    # Both threads translated and their entries coexist per ASID.
    tlb = system.shared_tlb
    asids = {asid for tlb_set in tlb._sets for (asid, _) in tlb_set}
    assert asids == {platform.space.page_table.asid, space_b.page_table.asid}
    for tlb_set in tlb._sets:
        for (asid, vpn), entry in tlb_set.items():
            space = platform.space if asid == platform.space.page_table.asid else space_b
            assert entry.frame == space.page_table.entry(vpn).frame


def test_multiprocess_pin_all_prevents_faults_in_every_space():
    mp = duet("vecadd", "vecadd", scale="tiny", quantum=4000)
    mp = MultiProcessSpec(name=mp.name, quantum=mp.quantum, specs=tuple(
        type(s)(name=s.name, kernel=s.kernel, params=s.params,
                residency=0.25, seed=s.seed) for s in mp.specs))
    faulting = run_multiprocess(mp, HarnessConfig(tlb_entries=64))
    pinned = run_multiprocess(mp, HarnessConfig(tlb_entries=64, pin_all=True))
    assert faulting.faults > 0
    assert pinned.faults == 0          # both spaces pinned, not just the first


def test_shared_tlb_systems_are_not_charged_per_thread_tlbs():
    config = HarnessConfig(tlb_entries=32)
    threads = [config.thread_spec(f"hwt{i}", "vecadd") for i in range(4)]
    private = SystemSynthesizer().synthesize(
        SystemSpec(name="private", threads=threads))
    shared = SystemSynthesizer().synthesize(
        SystemSpec(name="shared", threads=threads, shared_tlb=True))
    saved = (private.resource_estimate().ffs - shared.resource_estimate().ffs)
    # One shared TLB instead of four private ones: three TLBs' worth saved.
    per_tlb = private.resource_model.tlb(32, None).ffs
    assert saved == 3 * per_tlb


# ---------------------------------------------------------------------------
# N-process contention (policies, determinism, host-shared TLB)
# ---------------------------------------------------------------------------
def test_four_processes_time_slice_one_accelerator():
    mp = contention(["vecadd"] * 4, scale="tiny", quantum=2000)
    result = run_multiprocess(mp, HarnessConfig(tlb_entries=64))
    assert result.ok
    # Every process got at least one slice beyond the first.
    assert result.context_switches >= 4
    # More processes cost more than fewer (same per-process work).
    pair = run_multiprocess(contention(["vecadd"] * 2, scale="tiny",
                                       quantum=2000),
                            HarnessConfig(tlb_entries=64))
    assert result.total_cycles > pair.total_cycles


def test_slice_plan_policies_produce_different_interleavings():
    ops = [[Compute(cycles=100) for _ in range(40)] for _ in range(3)]
    rr = slice_plan(ops, quantum=1000, policy="round-robin")
    wf = slice_plan(ops, quantum=1000, policy="weighted-fair",
                    weights=(1.0, 2.0, 4.0))
    assert rr != wf
    # Both cover every operation exactly once, in program order.
    for plan in (rr, wf):
        replayed = {i: [] for i in range(3)}
        for process, chunk in plan:
            replayed[process].extend(chunk)
        assert all(replayed[i] == ops[i] for i in range(3))


def test_slice_plan_is_deterministic_for_same_spec_and_seed():
    def materialise():
        platform = Platform(PlatformConfig())
        mp = contention(["vecadd", "linked_list"], scale="tiny", seed=11)
        spaces = [platform.space, platform.kernel.create_process("p1")]
        return [run_functional(spec.bind(spaces[i]).make_kernel())
                for i, spec in enumerate(mp.specs)]

    plan_a = slice_plan(materialise(), quantum=3000, policy="fault-aware")
    plan_b = slice_plan(materialise(), quantum=3000, policy="fault-aware")
    assert plan_a == plan_b


def test_estimate_pressure_ranks_sparse_above_streaming():
    platform = Platform(PlatformConfig())
    streaming = run_functional(workload("vecadd", scale="tiny").bind(
        platform.space).make_kernel())
    sparse = run_functional(workload("random_access", scale="tiny").bind(
        platform.space).make_kernel())
    assert estimate_pressure(sparse) > estimate_pressure(streaming) > 0


def test_toy_policy_registers_and_drives_run_multiprocess():
    # The PR-2 "fifth model" proof, for schedulers: a policy defined entirely
    # outside repro.os plugs into MultiProcessSpec/slice_plan/run_multiprocess.
    from repro.os.scheduler import (SCHEDULER_POLICIES, SchedulingPolicy,
                                    register_policy)

    @register_policy("test-shortest-first")
    class ShortestFirstPolicy(SchedulingPolicy):
        """Runs each thread to completion, shortest demand first."""

        def plan(self, demands, config):
            from repro.os.scheduler import TimeSlice, _as_demand
            now, slices = 0, []
            for d in sorted(map(_as_demand, demands),
                            key=lambda d: (d.demand_cycles, d.name)):
                if d.demand_cycles:
                    slices.append(TimeSlice(thread=d.name, core=0, start=now,
                                            end=now + d.demand_cycles))
                    now += d.demand_cycles
            return slices

    try:
        mp = contention(["vecadd", "linked_list"], scale="tiny",
                        policy="test-shortest-first")
        result = run_multiprocess(mp, HarnessConfig(tlb_entries=32))
        assert result.ok
        # Run-to-completion, shortest first: linked_list (process 1) runs
        # before vecadd, so the MMU switches into it and back — exactly two
        # switches, far fewer than any quantum-sliced plan would take.
        assert result.context_switches == 2
    finally:
        del SCHEDULER_POLICIES["test-shortest-first"]


def test_host_shared_tlb_pinning_warms_the_fabric_tlb():
    mp = contention(["vecadd"] * 2, scale="tiny", quantum=4000)
    cold = run_multiprocess(mp, HarnessConfig(tlb_entries=64, pin_all=True))
    warm = run_multiprocess(mp, HarnessConfig(tlb_entries=64, pin_all=True,
                                              host_shares_tlb=True))
    # Host pinning touches every page through the shared TLB: the
    # accelerator starts warm and demand misses collapse.
    assert warm.tlb_misses < cold.tlb_misses
    # ... but the host's probes are charged as software overhead.
    assert warm.software_overhead_cycles > cold.software_overhead_cycles


def test_host_shared_tlb_respects_asids():
    # Host touches of process A's pages must never satisfy process B.
    config = HarnessConfig(tlb_entries=64)
    platform = Platform(config.platform)
    space_a = platform.space
    space_b = platform.kernel.create_process("app1")

    spec = SystemSpec(name="hosttlb",
                      threads=[config.thread_spec("hwt0", "vecadd")],
                      platform=config.platform, shared_tlb=True,
                      host_shares_tlb=True)
    system = SystemSynthesizer().synthesize(spec, platform=platform)
    tlb = system.shared_tlb
    assert platform.kernel.host_shares_fabric_tlb

    area_a = space_a.mmap(2 * 4096, name="a")
    area_b = space_b.mmap(2 * 4096, name="b", fixed_addr=area_a.start)
    vpns = space_a.vpns_of(area_a)

    charged = platform.kernel.host_touch_area(space_a, area_a, writable=True)
    assert charged > 0
    for vpn in vpns:
        assert (space_a.page_table.asid, vpn) in tlb
        assert (space_b.page_table.asid, vpn) not in tlb
        # A second touch of the same page is a host TLB hit (cheaper).
    assert platform.kernel.host_touch(space_a, vpns[0]) < \
        platform.kernel.config.host_tlb_miss_cycles
    # Lookups under B's ASID miss even though A's entries are resident.
    assert tlb.lookup(vpns[0], asid=space_b.page_table.asid) is None


def test_flush_on_switch_never_beats_asid_survival():
    mp = contention(["vecadd"] * 4, scale="tiny", quantum=2000)
    config = HarnessConfig(tlb_entries=64)
    flushing = run_multiprocess(mp, config, flush_on_switch=True)
    surviving = run_multiprocess(mp, config)
    assert flushing.tlb_misses > surviving.tlb_misses
    assert flushing.total_cycles >= surviving.total_cycles


# ---------------------------------------------------------------------------
# Regression: zero-/near-zero-demand processes cannot break fault-aware
# ---------------------------------------------------------------------------
def test_estimate_pressure_of_an_empty_or_computeless_program_is_zero():
    assert estimate_pressure([]) == 0.0
    assert estimate_pressure([Compute(cycles=0)]) == 0.0


def test_estimate_pressure_is_always_finite_and_capped():
    import math
    from repro.sim.process import Access
    from repro.workloads.multiprocess import MAX_PRESSURE
    # One minimal access spanning two pages: the worst pages/demand ratio a
    # real operation list can produce — far below the cap, and finite.
    pathological = [Access(addr=4095, size=2)]
    pressure = estimate_pressure(pathological)
    assert math.isfinite(pressure)
    assert 0.0 < pressure <= MAX_PRESSURE


def test_fault_aware_handles_the_single_trivial_process_control():
    # The Fig. 12 N=1 control point under fault-aware: a lone near-trivial
    # process must neither divide by zero nor receive absurd quanta.
    plan = slice_plan([[Compute(cycles=0)]], quantum=1000,
                      policy="fault-aware")
    assert plan == [(0, [Compute(cycles=0)])]
    mp = contention(["vecadd"], scale="tiny", policy="fault-aware")
    result = run_multiprocess(mp, HarnessConfig(tlb_entries=16))
    assert result.ok and result.total_cycles > 0


def test_adaptive_policy_on_the_n1_control_completes():
    mp = contention(["vecadd"], scale="tiny", policy="adaptive-fault")
    result = run_multiprocess(mp, HarnessConfig(tlb_entries=16))
    assert result.ok
    assert result.telemetry is not None
    assert result.telemetry.totals()["tlb_misses"] == result.tlb_misses
