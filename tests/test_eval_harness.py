"""Unit tests for the execution harness and report helpers."""

import pytest

from repro.eval.harness import (
    HarnessConfig,
    compare,
    run_copydma,
    run_ideal,
    run_software,
    run_svm,
)
from repro.eval.report import format_series, format_table, speedup_summary
from repro.workloads import workload


TINY = workload("vecadd", scale="tiny")


def test_run_svm_reports_translation_statistics():
    result = run_svm(TINY, HarnessConfig(tlb_entries=16))
    assert result.ok
    assert result.total_cycles > result.fabric_cycles > 0
    assert 0.0 < result.tlb_hit_rate <= 1.0
    assert result.tlb_misses > 0
    assert result.software_overhead_cycles > 0


def test_run_svm_multi_thread_scales_buffers():
    single = run_svm(TINY, HarnessConfig())
    dual = run_svm(TINY, HarnessConfig(), num_threads=2)
    assert dual.ok
    # Two threads do twice the work; the shared bus means the total time grows
    # but stays below 2x the single-thread time.
    assert single.total_cycles < dual.total_cycles < 2 * single.total_cycles


def test_run_ideal_is_lower_bound_for_svm_fabric_time():
    config = HarnessConfig(tlb_entries=16)
    svm = run_svm(TINY, config)
    ideal = run_ideal(TINY, config)
    assert ideal <= svm.fabric_cycles


def test_run_copydma_breakdown_positive():
    result = run_copydma(TINY, HarnessConfig())
    assert result.total_cycles > 0
    assert result.copy_in_cycles > 0
    assert result.fabric_cycles > 0


def test_run_software_single_and_multi():
    single = run_software(TINY, HarnessConfig())
    dual = run_software(TINY, HarnessConfig(), num_threads=2)
    assert single > 0
    assert dual > single            # two instances of the same work


def test_compare_produces_consistent_row():
    result = compare(TINY, HarnessConfig(auto_size_tlb=True))
    row = result.as_row()
    assert row["workload"] == "vecadd"
    assert result.speedup_vs_software == pytest.approx(
        result.software_cycles / result.svm_cycles, rel=1e-6)
    assert result.vm_overhead >= 1.0
    assert set(row) >= {"software", "copy_dma", "svm_thread", "ideal",
                        "speedup_sw", "speedup_dma", "vm_overhead"}


def test_auto_size_tlb_improves_or_matches_hit_rate():
    fixed = run_svm(workload("random_access", scale="tiny"),
                    HarnessConfig(tlb_entries=8))
    auto = run_svm(workload("random_access", scale="tiny"),
                   HarnessConfig(auto_size_tlb=True))
    assert auto.tlb_hit_rate >= fixed.tlb_hit_rate


def test_harness_thread_spec_uses_footprint_when_auto():
    config = HarnessConfig(auto_size_tlb=True, tlb_entries=4)
    spec = config.thread_spec("t", "vecadd", footprint_bytes=256 * 4096)
    assert spec.tlb_entries > 4
    manual = HarnessConfig(auto_size_tlb=False, tlb_entries=4)
    assert manual.thread_spec("t", "vecadd", footprint_bytes=256 * 4096).tlb_entries == 4


# ---------------------------------------------------------------- report
def test_format_table_aligns_columns_and_handles_missing_keys():
    text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "c": "x"}], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1] and "c" in lines[1]
    assert len(lines) == 5
    assert format_table([], title="E").startswith("E")


def test_format_series_orders_x_first():
    text = format_series({"y": [1, 2], "x": [10, 20]}, x_key="x")
    header = text.splitlines()[0]
    assert header.index("x") < header.index("y")


def test_speedup_summary_geomeans():
    rows = [{"speedup_sw": 2.0, "speedup_dma": 1.0, "vm_overhead": 1.0},
            {"speedup_sw": 8.0, "speedup_dma": 4.0, "vm_overhead": 1.5}]
    summary = speedup_summary(rows)
    assert summary["geomean_speedup_vs_software"] == pytest.approx(4.0)
    assert summary["geomean_speedup_vs_copydma"] == pytest.approx(2.0)
    assert summary["geomean_vm_overhead"] == pytest.approx((1.5) ** 0.5)


def test_compare_with_runner_matches_serial():
    from repro.exec import MemoCache, SweepRunner
    from repro.workloads import workload

    spec = workload("vecadd", scale="tiny")
    config = HarnessConfig(tlb_entries=16)
    serial = compare(spec, config)
    runner = SweepRunner(jobs=2, cache=MemoCache())
    parallel = compare(spec, config, runner=runner)
    assert parallel.as_row() == serial.as_row()
    assert parallel.outcomes == serial.outcomes   # bit-identical RunOutcomes
    assert runner.stats.points_submitted == 4


def test_compare_outcomes_are_uniform_run_outcomes():
    from repro.models import CANONICAL_MODELS, RunOutcome

    result = compare(TINY, HarnessConfig(tlb_entries=16))
    assert set(result.outcomes) == set(CANONICAL_MODELS)
    for name, outcome in result.outcomes.items():
        assert isinstance(outcome, RunOutcome)
        assert outcome.model == name
        assert outcome.total_cycles > 0
    assert result["copydma"].marshalling_cycles > 0
    assert result["svm"].marshalling_cycles == 0
    assert result["copydma"].breakdown["copy_in_cycles"] > 0


def test_compare_model_subset():
    result = compare(TINY, HarnessConfig(tlb_entries=16),
                     models=("svm", "software"))
    row = result.as_row()
    assert set(result.outcomes) == {"svm", "software"}
    assert "speedup_sw" in row and "speedup_dma" not in row
    assert result.speedup_vs_software > 0


def test_compare_deduplicates_repeated_models():
    result = compare(TINY, HarnessConfig(tlb_entries=16),
                     models=("svm", "svm", "software"))
    assert result.models == ["svm", "software"]
