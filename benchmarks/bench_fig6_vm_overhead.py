"""Fig. 6 — virtual-memory overhead vs page size (SVM normalised to ideal)."""

from repro.eval.experiments import fig6_vm_overhead
from repro.eval.report import format_nested_series


def test_fig6_vm_overhead(once):
    result = once(fig6_vm_overhead,
                  kernels=("vecadd", "matmul", "linked_list"),
                  page_sizes=(4096, 16384, 65536), scale="tiny")
    print()
    print(format_nested_series(result, title="Fig. 6: VM overhead vs page size"))
    for kernel, series in result.items():
        overheads = series["vm_overhead"]
        assert all(o >= 1.0 for o in overheads), kernel
        assert overheads[-1] <= overheads[0], kernel   # bigger pages, less overhead
