"""Fig. 4 — per-workload speedup bars of the SVM hardware thread."""

from repro.eval.experiments import fig4_speedup_bars
from repro.eval.harness import HarnessConfig
from repro.eval.report import format_series


def test_fig4_speedup_bars(once):
    series = once(fig4_speedup_bars, scale="tiny",
                  config=HarnessConfig(auto_size_tlb=True))
    print()
    print(format_series(series, title="Fig. 4: speedup of SVM hardware threads",
                        x_key="workloads"))
    assert len(series["workloads"]) == len(series["speedup_vs_software"])
    assert any(s > 1.0 for s in series["speedup_vs_software"])
