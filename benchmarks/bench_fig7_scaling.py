"""Fig. 7 — multi-thread scaling and the shared-walker ablation."""

from repro.eval.experiments import fig7_scaling, fig7_walker_ablation
from repro.eval.report import format_nested_series, format_series


def test_fig7_scaling(once):
    result = once(fig7_scaling, kernels=("vecadd", "matmul", "histogram"),
                  thread_counts=(1, 2, 4, 8), scale="tiny")
    print()
    print(format_nested_series(result, title="Fig. 7: throughput vs #threads"))
    # Shape: the compute-bound kernel keeps scaling, while memory-bound
    # kernels flatten (or degrade slightly) once the shared bus saturates.
    matmul = result["matmul"]["items_per_kcycle"]
    assert matmul[-1] > 1.5 * matmul[0]
    for kernel, series in result.items():
        throughput = series["items_per_kcycle"]
        # Contention may erode throughput but must not collapse it.
        assert throughput[-1] >= throughput[0] * 0.5, kernel


def test_fig7_walker_ablation(once):
    result = once(fig7_walker_ablation, kernel="random_access",
                  thread_counts=(1, 2, 4), scale="tiny")
    print()
    print(format_series(result, title="Fig. 7b: shared vs private walker",
                        x_key="threads"))
    assert len(result["shared_walker"]) == 3
