"""Fig. 9 — crossover between the SVM thread and the copy-based accelerator."""

from repro.eval.experiments import fig9_crossover, fig9_sparse_crossover
from repro.eval.report import format_series


def test_fig9_crossover(once):
    result = once(fig9_crossover, kernel="saxpy",
                  sizes=(1024, 4096, 16384, 65536, 262144))
    print()
    print(format_series(result, title="Fig. 9: SVM vs copy-DMA vs problem size",
                        x_key="sizes"))
    ratio_small = result["copydma_total_cycles"][0] / result["svm_total_cycles"][0]
    ratio_large = result["copydma_total_cycles"][-1] / result["svm_total_cycles"][-1]
    assert ratio_large > ratio_small        # SVM advantage grows with footprint


def test_fig9_sparse_crossover(once):
    result = once(fig9_sparse_crossover,
                  table_bytes=(262144, 1048576, 4194304), accesses=4096)
    print()
    print(format_series(result, title="Fig. 9b: sparse access over a large table",
                        x_key="table_bytes"))
    assert result["copydma_total_cycles"][-1] > result["svm_total_cycles"][-1]
