"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md for the index), prints the resulting rows/series, and reports
the wall-clock cost of producing it through pytest-benchmark.  Each
experiment is executed exactly once per benchmark run (rounds=1) because the
experiments themselves are deterministic simulations.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner
