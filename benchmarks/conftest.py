"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md for the index), prints the resulting rows/series, and reports
the wall-clock cost of producing it through pytest-benchmark.  Each
experiment is executed exactly once per benchmark run (rounds=1) because the
experiments themselves are deterministic simulations.

Benchmarks that sweep through a :class:`repro.exec.SweepRunner` additionally
record the runner's wall-clock timings and cache-hit counts in the
benchmark's ``extra_info`` (visible with ``pytest-benchmark``'s ``--verbose``
output and in saved JSON), so cache reuse across repeated points is
measurable, not anecdotal.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.eval.bench import BenchReport, git_sha, write_report
from repro.exec import MemoCache, SweepRunner

#: Worker processes used by runner-aware benchmarks (override with
#: ``REPRO_BENCH_JOBS``); capped by the machine's CPU count.
BENCH_JOBS = max(1, min(int(os.environ.get("REPRO_BENCH_JOBS", "4")),
                        os.cpu_count() or 1))

#: Timings accumulated by :func:`run_once`, dumped at session end to the
#: path in ``REPRO_BENCH_JSON`` (if set) — written with the same helpers
#: (and therefore the same shape/provenance) as the ``repro bench`` gate.
_SESSION_TIMINGS: dict = {}


def pytest_sessionfinish(session, exitstatus):
    path = os.environ.get("REPRO_BENCH_JSON")
    if not path or not _SESSION_TIMINGS:
        return
    write_report(BenchReport(sha=git_sha(), records=dict(_SESSION_TIMINGS)),
                 path)


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    started = time.perf_counter()
    result = benchmark.pedantic(func, args=args, kwargs=kwargs,
                                rounds=1, iterations=1, warmup_rounds=0)
    wall = round(time.perf_counter() - started, 4)
    benchmark.extra_info["wall_seconds"] = wall
    _SESSION_TIMINGS[benchmark.name] = {"wall_seconds": wall, "metrics": {}}
    return result


def record_runner(benchmark, runner: SweepRunner) -> None:
    """Attach a runner's timings and cache accounting to the benchmark."""
    benchmark.extra_info["jobs"] = runner.jobs
    benchmark.extra_info["sweep_timings"] = {
        label: round(seconds, 4) for label, seconds in runner.timings.items()}
    benchmark.extra_info.update(runner.stats.as_dict())
    if runner.cache is not None:
        benchmark.extra_info["cache_entries"] = len(runner.cache)
    print()
    print(runner.summary())


@pytest.fixture
def once(benchmark):
    """Fixture wrapper around :func:`run_once`."""

    def runner(func, *args, **kwargs):
        return run_once(benchmark, func, *args, **kwargs)

    return runner


@pytest.fixture
def sweep_runner(benchmark):
    """A parallel, memoizing runner whose stats land in ``extra_info``."""
    runner = SweepRunner(jobs=BENCH_JOBS, cache=MemoCache())
    yield runner
    record_runner(benchmark, runner)
