"""Fig. 10 — design-space exploration: runtime vs resources Pareto front."""

from repro.core.dse import SweepAxes
from repro.eval.experiments import fig10_dse
from repro.eval.report import format_table


def _rows(points):
    return [{**p["params"], "runtime": p["runtime_cycles"], "luts": p["luts"],
             "bram_kb": p["bram_kb"]} for p in points]


def test_fig10_dse(once):
    axes = SweepAxes(tlb_entries=(8, 16, 32, 64), max_burst_bytes=(128, 256),
                     max_outstanding=(2, 4), shared_walker=(False,))
    result = once(fig10_dse, kernel="matmul", scale="tiny", axes=axes)
    print()
    print(format_table(_rows(result["points"]), title="Fig. 10: all design points"))
    print(format_table(_rows(result["pareto"]), title="Fig. 10: Pareto front"))
    assert len(result["points"]) == axes.size()
    assert 0 < len(result["pareto"]) <= len(result["points"])
