"""Fig. 10 — design-space exploration: runtime vs resources Pareto front.

Also the showcase for the parallel, memoized sweep engine: the DSE grid is
re-run serially, on a ``jobs=4`` process pool, and again against a warm
memo cache, and the three wall-clock times are reported side by side.
"""

import os
import time

from conftest import BENCH_JOBS

from repro.core.dse import SweepAxes
from repro.eval.experiments import fig10_dse
from repro.eval.report import format_table

AXES = SweepAxes(tlb_entries=(8, 16, 32, 64), max_burst_bytes=(128, 256),
                 max_outstanding=(2, 4), shared_walker=(False,))


def _rows(points):
    return [{**p["params"], "runtime": p["runtime_cycles"], "luts": p["luts"],
             "bram_kb": p["bram_kb"]} for p in points]


def test_fig10_dse(once):
    result = once(fig10_dse, kernel="matmul", scale="tiny", axes=AXES)
    print()
    print(format_table(_rows(result["points"]), title="Fig. 10: all design points"))
    print(format_table(_rows(result["pareto"]), title="Fig. 10: Pareto front"))
    assert len(result["points"]) == AXES.size()
    assert 0 < len(result["pareto"]) <= len(result["points"])


def test_fig10_dse_parallel_and_memoized(benchmark, sweep_runner):
    """Serial vs jobs=N vs cached wall clock on the same DSE sweep."""

    def timed(**kwargs):
        started = time.perf_counter()
        result = fig10_dse(kernel="matmul", scale="tiny", axes=AXES, **kwargs)
        return result, time.perf_counter() - started

    serial_result, serial_s = timed()
    parallel_result, parallel_s = timed(runner=sweep_runner)
    # Same runner again: every point is already in the memo cache.
    cached_result, cached_s = benchmark.pedantic(
        timed, kwargs={"runner": sweep_runner},
        rounds=1, iterations=1, warmup_rounds=0)

    assert parallel_result == serial_result == cached_result
    benchmark.extra_info.update(serial_seconds=round(serial_s, 4),
                                parallel_seconds=round(parallel_s, 4),
                                cached_seconds=round(cached_s, 4))
    print()
    print(format_table([{
        "points": AXES.size(),
        "serial_s": round(serial_s, 3),
        f"jobs={sweep_runner.jobs}_s": round(parallel_s, 3),
        "cached_s": round(cached_s, 3),
        "parallel_speedup": round(serial_s / parallel_s, 2),
        "cached_speedup": round(serial_s / cached_s, 2),
    }], title="Fig. 10 sweep: serial vs parallel vs memoized"))

    # Memoization makes the repeated sweep essentially free.
    assert cached_s * 2 <= serial_s
    assert sweep_runner.stats.cache_hits >= AXES.size()
    # Real parallel speedup needs real cores; assert only when they exist.
    if BENCH_JOBS >= 4 and (os.cpu_count() or 1) >= 4:
        assert parallel_s * 2 <= serial_s
