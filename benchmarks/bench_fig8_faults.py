"""Fig. 8 — demand-paging cost vs residency, plus the pinning ablation."""

from repro.eval.experiments import fig8_fault_sweep, fig8_pinning_ablation
from repro.eval.report import format_nested_series, format_table


def test_fig8_fault_sweep(once):
    result = once(fig8_fault_sweep, kernels=("linked_list", "vecadd"),
                  residencies=(0.0, 0.25, 0.5, 0.75, 1.0), scale="tiny")
    print()
    print(format_nested_series(result, title="Fig. 8: runtime vs initial residency"))
    for kernel, series in result.items():
        assert series["total_cycles"][0] >= series["total_cycles"][-1], kernel
        assert series["faults"][0] > series["faults"][-1] == 0, kernel


def test_fig8_pinning_ablation(once):
    result = once(fig8_pinning_ablation, kernel="vecadd", residency=0.25)
    print()
    print(format_table([result], title="Fig. 8b: demand paging vs pinning"))
    assert result["pinned_faults"] == 0
    assert result["pinned_cycles"] <= result["demand_paging_cycles"]
