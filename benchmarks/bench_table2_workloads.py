"""Table 2 — workload characterisation (footprint, traffic, locality)."""

from repro.eval.experiments import table2_workloads
from repro.eval.report import format_table


def test_table2_workloads(once):
    rows = once(table2_workloads, scale="default")
    print()
    print(format_table(rows, title="Table 2: workload characterisation"))
    assert len(rows) == 9
    assert all(row["unique_pages"] > 0 for row in rows)
