"""Fig. 5 — TLB hit rate and runtime vs TLB size, plus replacement ablation."""

from repro.eval.experiments import fig5_replacement_ablation, fig5_tlb_sweep
from repro.eval.report import format_nested_series, format_series


def test_fig5_tlb_sweep(once):
    sweep = once(fig5_tlb_sweep,
                 kernels=("vecadd", "matmul", "linked_list", "random_access"),
                 tlb_sizes=(4, 8, 16, 32, 64, 128), scale="tiny")
    print()
    print(format_nested_series(sweep, title="Fig. 5: TLB size sweep"))
    random_hits = sweep["random_access"]["hit_rate"]
    assert random_hits[-1] > random_hits[0]
    streaming_hits = sweep["vecadd"]["hit_rate"]
    assert streaming_hits[0] > 0.7          # streaming needs few entries


def test_fig5_replacement_ablation(once):
    result = once(fig5_replacement_ablation, kernel="random_access",
                  tlb_sizes=(8, 16, 32, 64), scale="tiny")
    print()
    print(format_series(result, title="Fig. 5b: replacement policy ablation",
                        x_key="tlb_entries"))
    assert set(result) >= {"lru", "fifo", "random"}
