"""Table 1 — synthesized system configurations and FPGA resource estimates."""

from repro.eval.experiments import table1_resources
from repro.eval.report import format_table


def test_table1_resources(once):
    rows = once(table1_resources, scale="tiny", thread_counts=(1, 2, 4),
                tlb_entries=(16, 32))
    print()
    print(format_table(rows, title="Table 1: synthesized systems and resources"))
    assert rows
    assert all(row["fits"] for row in rows if row["threads"] <= 2)
