"""Table 3 — end-to-end cycles and speedups for every execution model."""

from repro.eval.experiments import table3_speedups
from repro.eval.harness import HarnessConfig
from repro.eval.report import format_table, speedup_summary


def test_table3_speedups(once):
    rows = once(table3_speedups, scale="default",
                config=HarnessConfig(auto_size_tlb=True))
    print()
    print(format_table(rows, title="Table 3: software vs copy-DMA vs SVM vs ideal"))
    print(format_table([speedup_summary(rows)], title="Geometric means"))
    assert len(rows) == 9
    # Headline shape: the SVM hardware thread beats software on the
    # compute/stream kernels and beats the copy baseline on pointer data.
    by_kernel = {row["workload"]: row for row in rows}
    assert by_kernel["matmul"]["speedup_sw"] > 1.5
    assert by_kernel["linked_list"]["speedup_dma"] > 1.0
